//! Lowering + cost-based planning: the typed AST becomes an executable
//! plan IR before anything runs.
//!
//! `lower_query` compiles a parsed [`Query`] into a [`QueryPlan`]:
//! the renderable [`Plan`] tree `EXPLAIN` prints **and** the per-block
//! [`BlockPlan`]s the executor consumes. The executor no longer
//! re-derives pushdown decisions per run — WHERE conjuncts are split
//! once at plan time, each conjunct is assigned to the earliest binding
//! step that can evaluate it, and every pattern hop carries a
//! [`HopStrategy`] chosen by the cost model. `EXPLAIN` therefore renders
//! the plan that actually executes.
//!
//! Planning is *cost-based* when graph statistics are available
//! ([`pgraph::graph::GraphStats`], collected at `finalize()` time):
//! per-type cardinalities and average degrees drive `est_rows` /
//! `est_cost` annotations on every data-producing node, and decide the
//! kernel direction for Kleene hops — a counting kernel runs **backward
//! from an anchored target** when the estimated number of distinct
//! targets is strictly smaller than the estimated number of sources
//! (path reversal is a bijection, so shortest-path counts are
//! identical). Without statistics (`ctx = None`, the graph-less
//! `EXPLAIN` entry point) the same lowering runs with estimates omitted
//! and every choice falling back to the syntax-driven default, so plan
//! *shape* is independent of statistics.
//!
//! Estimator constants are deliberately coarse (equality conjuncts are
//! point lookups clamped to ~1 row, other predicates keep half their
//! input, reachability fraction 0.5): the point is order-of-magnitude
//! steering, and the `PROFILE` counters are the feedback loop —
//! `tests/planner_estimates.rs` flags any node whose `est_rows` is more
//! than 10x off the measured rows on the bench workloads.
//!
//! Determinism contract: hops within one FROM item execute in pattern
//! order (the cost model annotates but never reorders them). Whole FROM
//! *items* may be reordered ([`BlockPlan::from_order`]) — but only when
//! the reorder is provably output-invariant: items bind disjoint
//! variables, every WHERE conjunct touches at most one item (so the
//! surviving row set is a product of per-item filters and each alias's
//! first-occurrence order equals its own generation order), every output
//! is a vertex fragment (table outputs are row-order sensitive), and
//! every ACCUM statement is a combine (`+=`) into an exact-merge
//! accumulator ([`accum::AccumType::is_exact_merge`]). Under that gate
//! results stay byte-identical across plans, shard counts, parallelism
//! levels, and statistics refreshes.

use crate::ast::*;
use crate::explain::{Plan, PlanNode};
use crate::semantics::PathSemantics;
use crate::table::Table;
use darpe::{Darpe, DarpeDir, Symbol};
use accum::AccumType;
use pgraph::fxhash::{FxHashMap, FxHashSet};
use pgraph::graph::Graph;
use pgraph::schema::ETypeId;
use pgraph::shard::ShardedGraph;
use std::sync::Arc;

/// Rows an equality conjunct (`x.a == c`) is assumed to keep: a point
/// lookup, independent of input cardinality.
const EQ_POINT_ROWS: f64 = 1.0;
/// Selectivity assumed for any other conjunct.
const SEL_OTHER: f64 = 0.5;
/// Fraction of the candidate target set a reachability kernel is assumed
/// to reach from one source.
const REACH_FRACTION: f64 = 0.5;
/// Default cardinality guess for a `SET<VERTEX>` parameter.
const VSET_PARAM_EST: f64 = 8.0;

/// Everything the planner may consult about the execution environment.
/// `graph` supplies schema + [`pgraph::graph::GraphStats`]; `tables`
/// supplies relational input cardinalities.
pub(crate) struct LowerCtx<'a> {
    /// The graph the plan will run against.
    pub graph: &'a Graph,
    /// Registered relational input tables.
    pub tables: &'a FxHashMap<String, Table>,
    /// Active sharded view, when the engine executes scatter-gather —
    /// EXPLAIN then annotates kernel hops with per-shard fan-out nodes.
    pub shards: Option<&'a ShardedGraph>,
}

/// The execution strategy the planner chose for one pattern hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopStrategy {
    /// Single-edge hop: enumerate the CSR adjacency of each source.
    Adjacency,
    /// Polynomial SDMC counting kernel, forward from each source.
    CountingForward,
    /// Polynomial SDMC counting kernel, run backward from the anchored
    /// target over the reversed automaton (chosen when the estimated
    /// target count is strictly smaller than the source count; path
    /// reversal is a bijection so counts are identical).
    CountingBackward,
    /// Enumerative kernel, forward from each source (exponential).
    EnumForward,
    /// Enumerative kernel, backward from the anchored target
    /// (exponential, but bounded by the target's path population).
    EnumBackward,
}

impl HopStrategy {
    /// The stable human-readable strategy phrase used in plan details.
    pub fn describe(self) -> &'static str {
        match self {
            HopStrategy::Adjacency => "adjacency scan",
            HopStrategy::CountingForward => {
                "SDMC counting kernel, forward (polynomial, Thm 6.1)"
            }
            HopStrategy::CountingBackward => {
                "SDMC counting kernel, backward from anchored target (polynomial, Thm 6.1)"
            }
            HopStrategy::EnumForward => "enumerative kernel, forward (EXPONENTIAL)",
            HopStrategy::EnumBackward => {
                "enumerative kernel, backward from anchored target (EXPONENTIAL)"
            }
        }
    }
}

/// The executable plan for one SELECT block: the split WHERE conjuncts
/// (with the FROM variables each references) and the per-hop strategy
/// choices. The executor's pushdown worklist is a list of *indices*
/// into [`BlockPlan::conjuncts`], so per-execution bookkeeping never
/// clones or re-walks the AST.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// The path semantics this block was lowered under. The executor
    /// re-lowers on the fly if the runtime semantics diverge (an
    /// `IF`-guarded `USE SEMANTICS` the static walk could not predict).
    pub semantics: PathSemantics,
    /// Split WHERE conjuncts in source order, each with the sorted,
    /// deduplicated FROM variables it references.
    pub conjuncts: Vec<(Expr, Vec<String>)>,
    /// Hop strategies keyed by `&Hop as *const _ as usize` (the same
    /// AST-identity keying the profiler uses).
    strategies: FxHashMap<usize, HopStrategy>,
    /// Execution order of the FROM items as indices into the source
    /// list; empty = source order. Non-empty only when the cost model
    /// found a strictly cheaper order *and* the output-invariance gate
    /// held (see the module docs' determinism contract).
    pub from_order: Vec<usize>,
    /// Absint-proven parallel gate for the ACCUM clause (pass 6,
    /// `lint/absint.rs`) — strictly wider than the syntactic exact-merge
    /// gate: it additionally admits `=` assigns whose RHS is proven
    /// row-invariant. The executor runs the partial-fold paths when
    /// either gate holds; results stay byte-identical at every
    /// parallelism and shard count.
    pub accum_parallel_proven: bool,
    /// Absint-proven parallel gate for the POST_ACCUM clause: no live
    /// read of a clause-targeted accumulator, exact-merge combines, and
    /// assigns admitted via per-vertex cell disjointness (vertex
    /// accumulators) or sequential suffix-replay (globals).
    pub post_accum_parallel_proven: bool,
    /// Reversed whole-pattern rewrites, keyed by FROM-item index: the
    /// cost model proved the reversed traversal strictly cheaper and
    /// the block's outputs invariant under row reordering, so the
    /// executor walks this item instead of the source one.
    pub rewritten_from: FxHashMap<usize, FromItem>,
}

impl BlockPlan {
    /// The strategy chosen for `hop`, if this plan covers it.
    pub fn strategy_for(&self, hop: &Hop) -> Option<HopStrategy> {
        self.strategies.get(&(hop as *const Hop as usize)).copied()
    }
}

/// A lowered, optimized query plan: the renderable [`Plan`] tree plus
/// the executable per-block plans, keyed by AST identity.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The renderable plan tree (`EXPLAIN` output).
    pub plan: Plan,
    /// The engine-default semantics the plan was lowered under.
    pub semantics: PathSemantics,
    /// The graph finalize-epoch the cost estimates were computed against
    /// (0 = lowered without statistics). Prepared-statement plan caches
    /// key on this: a re-finalized graph invalidates cached plans.
    pub epoch: u64,
    blocks: FxHashMap<usize, Arc<BlockPlan>>,
}

impl QueryPlan {
    /// The executable plan for `block`, when this query plan covers it
    /// (AST-identity keyed).
    pub fn block_for(&self, block: &SelectBlock) -> Option<&Arc<BlockPlan>> {
        self.blocks.get(&(block as *const SelectBlock as usize))
    }
}

struct LowerState<'a, 'c> {
    ctx: Option<&'c LowerCtx<'a>>,
    params: &'a [Param],
    blocks: FxHashMap<usize, Arc<BlockPlan>>,
    block_no: usize,
    /// Planner-visible vertex-set cardinalities (`S = SELECT ...` feeds
    /// later blocks' scans).
    vset_est: FxHashMap<String, f64>,
    /// Declared accumulator types (vertex and global share a namespace
    /// here), collected from the query body — the FROM-reorder gate
    /// checks ACCUM targets against [`AccumType::is_exact_merge`].
    /// Empty for [`lower_block_only`], which has no query context.
    accum_types: FxHashMap<String, AccumType>,
    /// Abstract-interpretation facts for the whole query (pass 6,
    /// `lint/absint.rs`): proven parallel gates, conjunct constancy and
    /// WHILE bounds, keyed by AST block identity. `None` for
    /// [`lower_block_only`], which has no query context to analyze.
    facts: Option<crate::lint::QueryFacts>,
}

/// Lowers `query` into a [`QueryPlan`] under `semantics`, cost-based
/// when `ctx` supplies graph statistics.
pub(crate) fn lower_query(
    query: &Query,
    semantics: PathSemantics,
    ctx: Option<&LowerCtx<'_>>,
) -> QueryPlan {
    let mut root = PlanNode::new(
        "query",
        format!("QUERY {} [{:?} semantics]", query.name, semantics),
    );
    let mut accum_types = FxHashMap::default();
    collect_accum_types(&query.body, &mut accum_types);
    // Run the abstract interpreter once per lowering: its proven gates
    // and conjunct constancy feed the strategy choices and estimates
    // below, keyed by AST block identity (same allocation as the blocks
    // walked here).
    let facts =
        crate::lint::compute_facts(query, semantics, &accum::UserAccumRegistry::new());
    let mut st = LowerState {
        ctx,
        params: &query.params,
        blocks: FxHashMap::default(),
        block_no: 0,
        vset_est: FxHashMap::default(),
        accum_types,
        facts: Some(facts),
    };
    lower_stmts(&query.body, semantics, &mut st, &mut root.children);
    QueryPlan {
        epoch: ctx.map_or(0, |c| c.graph.stats().epoch()),
        semantics,
        plan: Plan { query: query.name.clone(), semantics, root },
        blocks: st.blocks,
    }
}

/// Lowers a single block outside a whole-query walk — the executor's
/// fallback when the runtime semantics diverge from the static plan.
pub(crate) fn lower_block_only(
    block: &SelectBlock,
    semantics: PathSemantics,
    ctx: Option<&LowerCtx<'_>>,
) -> BlockPlan {
    let mut st = LowerState {
        ctx,
        params: &[],
        blocks: FxHashMap::default(),
        block_no: 0,
        vset_est: FxHashMap::default(),
        accum_types: FxHashMap::default(),
        facts: None,
    };
    let (_, bp, _) = lower_block(block, semantics, 1, &mut st);
    bp
}

fn lower_stmts(
    stmts: &[Stmt],
    mut semantics: PathSemantics,
    st: &mut LowerState<'_, '_>,
    out: &mut Vec<PlanNode>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::UseSemantics(s) => {
                semantics = *s;
                out.push(PlanNode::new(
                    "use-semantics",
                    format!("USE SEMANTICS -> {semantics:?}"),
                ));
            }
            Stmt::Select(block) => {
                st.block_no += 1;
                let (node, bp, _) = lower_block(block, semantics, st.block_no, st);
                st.blocks.insert(
                    block.as_ref() as *const SelectBlock as usize,
                    Arc::new(bp),
                );
                out.push(node);
            }
            Stmt::VSetAssign { name, source, .. } => match source {
                VSetSource::Select(block) => {
                    st.block_no += 1;
                    out.push(PlanNode::new(
                        "vset-assign",
                        format!("{name} = <block {}>", st.block_no),
                    ));
                    let (node, bp, est) = lower_block(block, semantics, st.block_no, st);
                    st.blocks.insert(
                        block.as_ref() as *const SelectBlock as usize,
                        Arc::new(bp),
                    );
                    st.vset_est.insert(name.clone(), est);
                    out.push(node);
                }
                VSetSource::Literal(entries) => {
                    let mut node = PlanNode::new(
                        "vset-assign",
                        format!("{name} = scan {{{}}}", entries.join(", ")),
                    );
                    if st.ctx.is_some() {
                        let est: f64 =
                            entries.iter().map(|e| scan_est(e, None, st)).sum();
                        st.vset_est.insert(name.clone(), est);
                        annotate(&mut node, est, est);
                    }
                    out.push(node);
                }
                VSetSource::SetOp { op, lhs, rhs } => {
                    let mut node = PlanNode::new(
                        "vset-assign",
                        format!("{name} = {lhs} {op:?} {rhs}"),
                    );
                    if st.ctx.is_some() {
                        let l = scan_est(lhs, None, st);
                        let r = scan_est(rhs, None, st);
                        let est = match op {
                            SetOp::Union => l + r,
                            SetOp::Intersect => l.min(r),
                            SetOp::Minus => l,
                        };
                        st.vset_est.insert(name.clone(), est);
                        annotate(&mut node, est, l + r);
                    }
                    out.push(node);
                }
            },
            Stmt::While { body, limit, .. } => {
                let mut node = PlanNode::new(
                    "while",
                    format!(
                        "WHILE loop{}:",
                        if limit.is_some() { " (bounded)" } else { "" }
                    ),
                );
                lower_stmts(body, semantics, st, &mut node.children);
                out.push(node);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                let mut node = PlanNode::new("if", "IF:");
                lower_stmts(then_branch, semantics, st, &mut node.children);
                out.push(node);
                if !else_branch.is_empty() {
                    let mut node = PlanNode::new("else", "ELSE:");
                    lower_stmts(else_branch, semantics, st, &mut node.children);
                    out.push(node);
                }
            }
            Stmt::Foreach { var, body, .. } => {
                let mut node = PlanNode::new("foreach", format!("FOREACH {var}:"));
                lower_stmts(body, semantics, st, &mut node.children);
                out.push(node);
            }
            _ => {}
        }
    }
}

/// Walks statements (including WHILE/IF/FOREACH bodies) collecting every
/// accumulator declaration's type, for the FROM-reorder exactness gate.
fn collect_accum_types(stmts: &[Stmt], out: &mut FxHashMap<String, AccumType>) {
    for stmt in stmts {
        match stmt {
            Stmt::AccumDecl { ty, decls } => {
                for d in decls {
                    // `@x` and `@@x` are distinct namespaces: key with
                    // the sigil so the gate never reads the wrong type.
                    let key =
                        if d.global { format!("@@{}", d.name) } else { format!("@{}", d.name) };
                    out.insert(key, ty.clone());
                }
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                collect_accum_types(body, out);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_accum_types(then_branch, out);
                collect_accum_types(else_branch, out);
            }
            _ => {}
        }
    }
}

/// Attaches `est_rows`/`est_cost` to a node (estimates are clamped to
/// non-negative and rendered as rounded integers).
fn annotate(node: &mut PlanNode, rows: f64, cost: f64) {
    node.est_rows = Some(rows.max(0.0).round() as u64);
    node.est_cost = Some(cost.max(0.0).round() as u64);
}

/// Estimated cardinality of scanning `name` (vertex type, vertex-set
/// variable, parameter, or `_`/`ANY`), narrowed to 1 when the binding
/// variable is anchored by a same-named vertex parameter (mirroring the
/// executor's `anchor_for`).
fn scan_est(name: &str, var: Option<&str>, st: &LowerState<'_, '_>) -> f64 {
    let Some(ctx) = st.ctx else { return 0.0 };
    let stats = ctx.graph.stats();
    let est = if let Some(e) = st.vset_est.get(name) {
        *e
    } else if name == "_" || name.eq_ignore_ascii_case("any") {
        stats.total_vertices() as f64
    } else if let Some(vt) = ctx.graph.schema().vertex_type_id(name) {
        stats.vertex_count(vt) as f64
    } else {
        match st.params.iter().find(|p| p.name == name).map(|p| &p.ty) {
            Some(ParamType::Vertex(_)) => 1.0,
            Some(ParamType::VertexSet) => VSET_PARAM_EST,
            _ => 1.0,
        }
    };
    let anchored = var.is_some_and(|v| {
        st.params.iter().any(|p| p.name == v && matches!(p.ty, ParamType::Vertex(_)))
    });
    if anchored {
        est.min(1.0)
    } else {
        est
    }
}

/// Cardinality left after applying one WHERE conjunct to `card` input
/// rows. Equality is modelled as a point lookup (clamped to
/// [`EQ_POINT_ROWS`] — fractional selectivities diverge from reality as
/// the graph grows); every other predicate keeps a fixed fraction.
fn filtered_card(card: f64, e: &Expr) -> f64 {
    match e {
        Expr::Binary { op: BinOp::Eq, .. } => card.min(EQ_POINT_ROWS),
        _ => card * SEL_OTHER,
    }
}

/// Estimated adjacency fanout of one DARPE symbol: edges matched per
/// source vertex, averaged over the population the symbol can actually
/// start from (the edge type's schema-declared endpoint types), not the
/// whole graph — averaging over unrelated vertex types would dilute the
/// fanout of type-constrained edges on heterogeneous graphs.
fn symbol_fanout(sym: &Symbol, ctx: &LowerCtx<'_>) -> f64 {
    use pgraph::schema::VTypeId;
    let stats = ctx.graph.stats();
    let schema = ctx.graph.schema();
    let total_v = stats.total_vertices().max(1) as f64;
    // Population of the endpoint side a traversal starts from: the
    // schema-declared endpoint types when present, otherwise the vertex
    // types that actually carry this edge type in the loaded graph (the
    // per-type degree tables collected at `finalize()`).
    let side_pop = |declared: &[VTypeId], incoming: bool, et: ETypeId| -> f64 {
        if !declared.is_empty() {
            return declared
                .iter()
                .map(|vt| stats.vertex_count(*vt) as f64)
                .sum::<f64>()
                .max(1.0);
        }
        let mut pop = 0.0;
        for i in 0..schema.vertex_type_count() {
            let vt = VTypeId(i as u32);
            let d = if incoming {
                stats.avg_in_degree(vt, et)
            } else {
                stats.avg_out_degree(vt, et)
            };
            if d > 0.0 {
                pop += stats.vertex_count(vt) as f64;
            }
        }
        if pop > 0.0 { pop } else { total_v }
    };
    let ets: Vec<ETypeId> = match &sym.edge_type {
        Some(name) => schema.edge_type_id(name).into_iter().collect(),
        None => (0..schema.edge_type_count()).map(|i| ETypeId(i as u32)).collect(),
    };
    let mut fanout = 0.0;
    for et in ets {
        let def = schema.edge_type(et);
        let e = stats.edge_count(et) as f64;
        fanout += match (sym.dir, def.directed) {
            // An undirected edge appears in the CSR from both endpoints;
            // out-degree statistics include undirected incidence.
            (DarpeDir::Undirected, false) | (DarpeDir::Any, false) => {
                let mut vts: Vec<VTypeId> = def.from_types.clone();
                for vt in &def.to_types {
                    if !vts.contains(vt) {
                        vts.push(*vt);
                    }
                }
                2.0 * e / side_pop(&vts, false, et)
            }
            (DarpeDir::Undirected, true) => 0.0,
            (DarpeDir::Any, true) => {
                e / side_pop(&def.from_types, false, et)
                    + e / side_pop(&def.to_types, true, et)
            }
            (DarpeDir::Forward, true) => e / side_pop(&def.from_types, false, et),
            (DarpeDir::Reverse, true) => e / side_pop(&def.to_types, true, et),
            (DarpeDir::Forward | DarpeDir::Reverse, false) => 0.0,
        };
    }
    fanout
}

fn darpe_symbols<'d>(d: &'d Darpe, out: &mut Vec<&'d Symbol>) {
    match d {
        Darpe::Symbol(s) => out.push(s),
        Darpe::Concat(xs) | Darpe::Alt(xs) => {
            for x in xs {
                darpe_symbols(x, out);
            }
        }
        Darpe::Repeat { inner, .. } => darpe_symbols(inner, out),
    }
}

/// Total number of CSR entries a reachability kernel over `d` may touch
/// (the `E_sub` term of the kernel cost model): the raw matched-edge
/// count per symbol, doubled where both CSR directions are walked.
fn darpe_edge_total(d: &Darpe, ctx: &LowerCtx<'_>) -> f64 {
    let mut syms = Vec::new();
    darpe_symbols(d, &mut syms);
    let stats = ctx.graph.stats();
    let schema = ctx.graph.schema();
    let mut total = 0.0;
    for sym in syms {
        let ets: Vec<ETypeId> = match &sym.edge_type {
            Some(name) => schema.edge_type_id(name).into_iter().collect(),
            None => (0..schema.edge_type_count()).map(|i| ETypeId(i as u32)).collect(),
        };
        for et in ets {
            let e = stats.edge_count(et) as f64;
            let directed = schema.edge_type(et).directed;
            total += match (sym.dir, directed) {
                (DarpeDir::Undirected, false) | (DarpeDir::Any, false) => 2.0 * e,
                (DarpeDir::Undirected, true) => 0.0,
                (DarpeDir::Any, true) => 2.0 * e,
                (DarpeDir::Forward | DarpeDir::Reverse, true) => e,
                (DarpeDir::Forward | DarpeDir::Reverse, false) => 0.0,
            };
        }
    }
    total
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {op:?} {}", expr_label(lhs), expr_label(rhs))
        }
        Expr::Ident(n) => n.clone(),
        Expr::Attr { base, field } => format!("{base}.{field}"),
        Expr::VAcc { var, name, .. } => format!("{var}.@{name}"),
        Expr::GAcc(n) => format!("@@{n}"),
        Expr::Str(s) => format!("'{s}'"),
        Expr::Int(i) => i.to_string(),
        Expr::Double(d) => d.to_string(),
        Expr::Call { func, .. } => format!("{func}(..)"),
        _ => "<expr>".to_string(),
    }
}

fn collect_refs(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |sub| match sub {
        Expr::Ident(n) => out.push(n.clone()),
        Expr::Attr { base, .. } => out.push(base.clone()),
        Expr::VAcc { var, .. } => out.push(var.clone()),
        _ => {}
    });
}

/// Splits an expression on top-level `AND` into conjuncts.
pub(crate) fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { op: BinOp::And, lhs, rhs } = e {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(e.clone());
    }
}

/// All variables the FROM clause will bind.
pub(crate) fn from_bound_vars(items: &[FromItem]) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for item in items {
        match item {
            FromItem::Table { alias, .. } => {
                out.insert(alias.clone());
            }
            FromItem::Pattern { start, hops, .. } => {
                if let Some(v) = &start.var {
                    out.insert(v.clone());
                }
                for h in hops {
                    if let Some(v) = &h.edge_var {
                        out.insert(v.clone());
                    }
                    if let Some(v) = &h.to.var {
                        out.insert(v.clone());
                    }
                }
            }
        }
    }
    out
}

/// Cost of running one FROM item as the *outer* loop, independent of
/// the other items: its scan cardinality after item-local conjunct
/// narrowing, plus per-hop traversal terms mirroring the sequential
/// model (adjacency fanout for single symbols, `E_sub` for kernels).
fn standalone_item_cost(
    item: &FromItem,
    vars: &FxHashSet<String>,
    conjuncts: &[(Expr, Vec<String>)],
    st: &LowerState<'_, '_>,
) -> f64 {
    let ctx = st.ctx.expect("reorder gate requires statistics");
    match item {
        FromItem::Table { name, alias } => match ctx.tables.get(name.as_str()) {
            Some(t) => t.len() as f64,
            None => scan_est(name, Some(alias), st).max(1.0),
        },
        FromItem::Pattern { start, hops, .. } => {
            let mut rows = scan_est(&start.name, start.var.as_deref(), st).max(1.0);
            for (c, refs) in conjuncts {
                if !refs.is_empty() && refs.iter().all(|r| vars.contains(r)) {
                    rows = filtered_card(rows, c);
                }
            }
            let mut cost = rows;
            for hop in hops {
                let per_row = match hop.darpe.as_single_symbol() {
                    Some(sym) => symbol_fanout(sym, ctx),
                    None => darpe_edge_total(&hop.darpe, ctx),
                };
                cost += rows * per_row.max(1.0);
            }
            cost
        }
    }
}

/// Decides a cost-based execution order for the FROM items (closing the
/// reorder question PR 7 left open). Returns the permutation as indices
/// into `block.from`, or empty when the gate fails or the cheapest order
/// *is* the source order.
///
/// Output-invariance gate — every condition must hold:
/// * statistics are present and there are at least two items;
/// * items bind pairwise-disjoint variable sets (no correlated join);
/// * every WHERE conjunct references variables of at most one item — a
///   cross-item conjunct filters the *product*, and the surviving rows'
///   first-occurrence vertex order then depends on which item is outer;
/// * every output is a vertex set (table outputs are row-order
///   sensitive);
/// * there is no GROUP BY;
/// * every ACCUM statement is a `+=` combine into an accumulator whose
///   declared type merges exactly ([`AccumType::is_exact_merge`]) —
///   reordering permutes combine order, which only exact-merge
///   combiners are guaranteed not to observe bit-for-bit.
fn choose_from_order(
    block: &SelectBlock,
    conjuncts: &[(Expr, Vec<String>)],
    st: &LowerState<'_, '_>,
) -> Vec<usize> {
    if st.ctx.is_none() || block.from.len() < 2 || block.group_by.is_some() {
        return Vec::new();
    }
    for frag in &block.outputs {
        let vertex_set = frag.items.len() == 1
            && frag.items[0].alias.is_none()
            && matches!(frag.items[0].expr, Expr::Ident(_));
        if !vertex_set {
            return Vec::new();
        }
    }
    let registry = accum::UserAccumRegistry::new();
    for acc in &block.accum {
        let key = match acc {
            AccStmt::LocalDecl { .. } => continue,
            AccStmt::VAcc { name, combine, .. } => {
                if !combine {
                    return Vec::new();
                }
                format!("@{name}")
            }
            AccStmt::GAcc { name, combine, .. } => {
                if !combine {
                    return Vec::new();
                }
                format!("@@{name}")
            }
        };
        match st.accum_types.get(&key) {
            Some(ty) if ty.is_exact_merge(&registry) => {}
            _ => return Vec::new(),
        }
    }
    let var_sets: Vec<FxHashSet<String>> = block
        .from
        .iter()
        .map(|item| from_bound_vars(std::slice::from_ref(item)))
        .collect();
    for (i, a) in var_sets.iter().enumerate() {
        for b in &var_sets[i + 1..] {
            if a.iter().any(|v| b.contains(v)) {
                return Vec::new();
            }
        }
    }
    for (_, refs) in conjuncts {
        if !refs.is_empty()
            && !var_sets.iter().any(|vs| refs.iter().all(|r| vs.contains(r)))
        {
            return Vec::new();
        }
    }
    let costs: Vec<f64> = block
        .from
        .iter()
        .enumerate()
        .map(|(i, item)| standalone_item_cost(item, &var_sets[i], conjuncts, st))
        .collect();
    let mut order: Vec<usize> = (0..block.from.len()).collect();
    // Stable ascending sort: ties keep source order, so a reorder only
    // happens on a *strictly* cheaper anchor.
    order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
    if order.iter().enumerate().all(|(i, &x)| i == x) {
        Vec::new()
    } else {
        order
    }
}

/// Plan-time mirror of the runtime exact-merge scatter gate: true when
/// every statement `+=`-combines into an accumulator whose declared
/// type merges exactly ([`AccumType::is_exact_merge`]). Decides the
/// ACCUM strategy annotation shown by EXPLAIN; the executor re-checks
/// the same condition against its live stores at run time.
fn accum_exact_merge(stmts: &[AccStmt], st: &LowerState<'_, '_>) -> bool {
    let registry = accum::UserAccumRegistry::new();
    stmts.iter().all(|s| {
        let key = match s {
            AccStmt::LocalDecl { .. } => return true,
            AccStmt::VAcc { name, combine, .. } => {
                if !combine {
                    return false;
                }
                format!("@{name}")
            }
            AccStmt::GAcc { name, combine, .. } => {
                if !combine {
                    return false;
                }
                format!("@@{name}")
            }
        };
        st.accum_types.get(&key).is_some_and(|ty| ty.is_exact_merge(&registry))
    })
}

/// Plan-time mirror of the runtime POST_ACCUM parallel gate: the
/// exact-merge condition plus no statement expression reading an
/// accumulator the clause also targets live (snapshot reads `v.@a'`
/// are safe — a live read would observe earlier vertices' writes under
/// the sequential per-vertex semantics).
fn post_accum_parallel(stmts: &[AccStmt], st: &LowerState<'_, '_>) -> bool {
    if !accum_exact_merge(stmts, st) {
        return false;
    }
    let mut v_targets: Vec<&str> = Vec::new();
    let mut g_targets: Vec<&str> = Vec::new();
    for s in stmts {
        match s {
            AccStmt::VAcc { name, .. } => v_targets.push(name),
            AccStmt::GAcc { name, .. } => g_targets.push(name),
            AccStmt::LocalDecl { .. } => {}
        }
    }
    let mut ok = true;
    for s in stmts {
        let expr = match s {
            AccStmt::LocalDecl { expr, .. }
            | AccStmt::VAcc { expr, .. }
            | AccStmt::GAcc { expr, .. } => expr,
        };
        expr.walk(&mut |sub| match sub {
            Expr::VAcc { name, prev: false, .. } if v_targets.contains(&name.as_str()) => {
                ok = false;
            }
            Expr::GAcc(name) if g_targets.contains(&name.as_str()) => {
                ok = false;
            }
            _ => {}
        });
    }
    ok
}

/// Recursively reverses a DARPE: concatenation order flips and every
/// symbol's direction adornment mirrors (`E>` ↔ `<E`, undirected and
/// wildcard-any unchanged), so the reversed expression matches exactly
/// the edge-wise reversals of the original's paths.
fn reverse_darpe(d: &Darpe) -> Darpe {
    match d {
        Darpe::Symbol(s) => Darpe::Symbol(Symbol {
            edge_type: s.edge_type.clone(),
            dir: match s.dir {
                DarpeDir::Forward => DarpeDir::Reverse,
                DarpeDir::Reverse => DarpeDir::Forward,
                other => other,
            },
        }),
        Darpe::Concat(xs) => Darpe::Concat(xs.iter().rev().map(reverse_darpe).collect()),
        Darpe::Alt(xs) => Darpe::Alt(xs.iter().map(reverse_darpe).collect()),
        Darpe::Repeat { inner, min, max } => Darpe::Repeat {
            inner: Box::new(reverse_darpe(inner)),
            min: *min,
            max: *max,
        },
    }
}

/// Builds the whole-pattern reversal of `start -(h1)- v1 ... -(hn)- end`:
/// `end -(rev hn)- ... v1 -(rev h1)- start`. Edge variables stay with
/// their hop (the traversed edge set is identical either way).
fn reversed_pattern(graph: &Option<String>, start: &VSpec, hops: &[Hop]) -> FromItem {
    let mut new_hops = Vec::with_capacity(hops.len());
    for (i, h) in hops.iter().enumerate().rev() {
        let to = if i == 0 { start.clone() } else { hops[i - 1].to.clone() };
        new_hops.push(Hop {
            darpe: reverse_darpe(&h.darpe),
            edge_var: h.edge_var.clone(),
            to,
        });
    }
    FromItem::Pattern {
        graph: graph.clone(),
        start: hops[hops.len() - 1].to.clone(),
        hops: new_hops,
    }
}

/// True when every aggregate call in `e` folds order-invariantly —
/// `count` (multiplicity sums are exact integers), `min`, `max`. A
/// float `sum`/`avg` is order-sensitive at the representation level,
/// so it blocks row-reordering rewrites.
fn exact_aggregates_only(e: &Expr) -> bool {
    let mut ok = true;
    e.walk(&mut |sub| {
        if let Expr::Call { func, args, star } = sub {
            let f = func.to_ascii_lowercase();
            let is_agg = *star
                || (args.len() == 1
                    && matches!(f.as_str(), "count" | "sum" | "avg" | "min" | "max"));
            if is_agg && !*star && !matches!(f.as_str(), "count" | "min" | "max") {
                ok = false;
            }
        }
    });
    ok
}

/// Estimated cardinality of one pattern endpoint, narrowed to a point
/// lookup when an equality conjunct references only that endpoint's
/// binding variable (mirror of the executor's sargable refinement).
fn anchored_card(
    spec: &VSpec,
    conjuncts: &[(Expr, Vec<String>)],
    st: &LowerState<'_, '_>,
) -> f64 {
    let est = scan_est(&spec.name, spec.var.as_deref(), st);
    let eq_anchored = spec.var.as_ref().is_some_and(|v| {
        conjuncts.iter().any(|(c, refs)| {
            refs.len() == 1
                && refs[0] == *v
                && matches!(c, Expr::Binary { op: BinOp::Eq, .. })
        })
    });
    if eq_anchored {
        est.min(EQ_POINT_ROWS)
    } else {
        est
    }
}

/// Hop-reordering gate (ROADMAP item 2): when a block's single FROM
/// pattern is a chain of single-edge hops whose *far* endpoint is
/// provably cheaper to anchor than its source — and every consumer of
/// the block's rows is row-order invariant — the planner substitutes
/// the reversed pattern. Returns the rewritten item plus the (forward,
/// backward) endpoint estimates when the reversal is strictly cheaper.
///
/// Row order changes under reversal, so the gate requires: aggregate-
/// only outputs with exact (`count`/`min`/`max`) aggregates, no GROUP
/// BY / HAVING / ORDER BY / LIMIT, and an order-invariant ACCUM clause
/// (syntactically exact-merge, or proven row-invariant by the absint
/// pass). POST_ACCUM is always safe — it iterates the sorted distinct
/// vertex set, a pure function of the row *multiset*. Vertex-set
/// outputs are excluded (their stored order is first-occurrence row
/// order, which PRINT and later scans observe).
fn choose_hop_reversal(
    block: &SelectBlock,
    conjuncts: &[(Expr, Vec<String>)],
    accum_order_invariant: bool,
    st: &LowerState<'_, '_>,
) -> Option<(FromItem, f64, f64)> {
    if st.ctx.is_none() || block.from.len() != 1 {
        return None;
    }
    let FromItem::Pattern { graph, start, hops } = &block.from[0] else {
        return None;
    };
    if hops.is_empty() || hops.iter().any(|h| h.darpe.as_single_symbol().is_none()) {
        return None;
    }
    if block.group_by.is_some()
        || block.having.is_some()
        || !block.order_by.is_empty()
        || block.limit.is_some()
        || !accum_order_invariant
    {
        return None;
    }
    for frag in &block.outputs {
        let all_exact_aggregates = frag
            .items
            .iter()
            .all(|i| i.expr.contains_aggregate() && exact_aggregates_only(&i.expr));
        if !all_exact_aggregates {
            return None;
        }
    }
    let end = &hops[hops.len() - 1].to;
    let fwd = anchored_card(start, conjuncts, st);
    let bwd = anchored_card(end, conjuncts, st);
    if bwd < fwd {
        Some((reversed_pattern(graph, start, hops), fwd, bwd))
    } else {
        None
    }
}

/// Lowers one SELECT block: produces the renderable node, the
/// executable [`BlockPlan`], and the estimated output cardinality.
fn lower_block(
    block: &SelectBlock,
    semantics: PathSemantics,
    no: usize,
    st: &mut LowerState<'_, '_>,
) -> (PlanNode, BlockPlan, f64) {
    let mut node = PlanNode::new("block", format!("BLOCK {no}:"));
    let with_est = st.ctx.is_some();
    // Absint facts for this block (AST-identity keyed; `None` under
    // `lower_block_only`). Cloned so the closures below don't hold a
    // borrow of `st`.
    let bf = st.facts.as_ref().and_then(|f| f.block_facts(block)).cloned();
    // Parallel-fold gates proven by the abstract interpreter (strictly
    // wider than the syntactic checks; see `lint/absint.rs`).
    let accum_proven = bf.as_ref().is_some_and(|f| f.accum_parallel);
    let post_proven = bf.as_ref().is_some_and(|f| f.post_accum_parallel);

    // Conjunct bookkeeping: split WHERE once, here — the executor reads
    // this exact list (by index) instead of re-splitting per run.
    let will_bind = from_bound_vars(&block.from);
    let mut conjuncts: Vec<(Expr, Vec<String>)> = Vec::new();
    if let Some(w) = &block.where_clause {
        let mut parts = Vec::new();
        split_conjuncts(w, &mut parts);
        for c in parts {
            let mut refs = Vec::new();
            collect_refs(&c, &mut refs);
            refs.retain(|r| will_bind.contains(r));
            refs.sort();
            refs.dedup();
            conjuncts.push((c, refs));
        }
    }
    let mut strategies: FxHashMap<usize, HopStrategy> = FxHashMap::default();

    // `live` tracks which conjuncts are still pending (pushdown state
    // machine over the binding steps, mirroring the executor).
    let mut live: Vec<bool> = vec![true; conjuncts.len()];
    let mut bound: FxHashSet<String> = FxHashSet::default();
    let mut rows = 1.0f64;
    let mut cost_total = 0.0f64;
    // Per-conjunct proven constancy from the interval analysis, aligned
    // with `split_conjuncts` order (the same split used above). A proven-
    // FALSE conjunct zeroes the estimate; a proven-TRUE one keeps every
    // row instead of paying the default selectivity.
    let conj_const: Vec<Option<bool>> =
        bf.as_ref().map(|f| f.conjunct_const.clone()).unwrap_or_default();
    let conjunct_rows = |i: usize, rows: f64, c: &Expr| -> (f64, &'static str) {
        match conj_const.get(i).copied().flatten() {
            Some(false) => (0.0, " [proven false: empty]"),
            Some(true) => (rows, " [proven true: no-op]"),
            None => (filtered_card(rows, c), ""),
        }
    };
    // Attach every conjunct whose variables are all bound to `parent`
    // (the binding step that made it ready) as a pushdown-filter child.
    let emit_ready = |bound: &FxHashSet<String>,
                      live: &mut Vec<bool>,
                      conjuncts: &[(Expr, Vec<String>)],
                      rows: &mut f64,
                      parent: &mut PlanNode,
                      with_est: bool| {
        for (i, (c, refs)) in conjuncts.iter().enumerate() {
            if !live[i] || refs.is_empty() || !refs.iter().all(|v| bound.contains(v)) {
                continue;
            }
            live[i] = false;
            let cost = *rows;
            let (next, note) = conjunct_rows(i, *rows, c);
            *rows = next;
            let mut f = PlanNode::new(
                "pushdown-filter",
                format!("pushdown filter: {}{note}", expr_label(c)),
            );
            if with_est {
                annotate(&mut f, *rows, cost);
            }
            parent.children.push(f);
        }
    };

    let from_order = choose_from_order(block, &conjuncts, st);
    if !from_order.is_empty() {
        let order_str: Vec<String> = from_order.iter().map(|i| i.to_string()).collect();
        node.children.push(PlanNode::new(
            "from-reorder",
            format!(
                "from-reorder: cost-chosen item order [{}] (output-invariant)",
                order_str.join(", ")
            ),
        ));
    }
    // Hop reordering: reverse the whole pattern when the far endpoint
    // is the cheaper anchor and every row consumer is order-invariant.
    // The plan walk below (and the executor, via
    // [`BlockPlan::rewritten_from`]) then traverses the rewritten item.
    let accum_order_invariant = block.accum.is_empty()
        || accum_exact_merge(&block.accum, st)
        || accum_proven;
    let mut rewritten_from: FxHashMap<usize, FromItem> = FxHashMap::default();
    if let Some((rev, fwd, bwd)) =
        choose_hop_reversal(block, &conjuncts, accum_order_invariant, st)
    {
        node.children.push(PlanNode::new(
            "hop-reorder",
            format!(
                "hop-reorder: reordered: true — reversed traversal (anchored end \
                 est {} rows < start est {} rows; result-equivalent: exact \
                 aggregates only)",
                bwd.round(),
                fwd.round()
            ),
        ));
        rewritten_from.insert(0, rev);
    }
    let exec_order: Vec<usize> = if from_order.is_empty() {
        (0..block.from.len()).collect()
    } else {
        from_order.clone()
    };
    for &item_idx in &exec_order {
        let item = rewritten_from.get(&item_idx).unwrap_or(&block.from[item_idx]);
        match item {
            FromItem::Table { name, alias } => {
                let mut scan = PlanNode::new(
                    "scan",
                    format!("scan {name} AS {alias} (table or vertex set)"),
                );
                if with_est {
                    let card = match st.ctx.and_then(|c| c.tables.get(name)) {
                        Some(t) => t.len() as f64,
                        None => scan_est(name, Some(alias), st),
                    };
                    rows *= card.max(1.0);
                    cost_total += rows;
                    annotate(&mut scan, rows, rows);
                }
                bound.insert(alias.clone());
                emit_ready(&bound, &mut live, &conjuncts, &mut rows, &mut scan, with_est);
                node.children.push(scan);
            }
            FromItem::Pattern { start, hops, .. } => {
                let mut scan = PlanNode::new(
                    "scan",
                    format!(
                        "scan {}{}",
                        start.name,
                        start.var.as_ref().map(|v| format!(" AS {v}")).unwrap_or_default()
                    ),
                );
                if with_est {
                    let card = scan_est(&start.name, start.var.as_deref(), st);
                    rows *= card.max(1.0);
                    cost_total += rows;
                    annotate(&mut scan, rows, rows);
                }
                if let Some(v) = &start.var {
                    bound.insert(v.clone());
                }
                emit_ready(&bound, &mut live, &conjuncts, &mut rows, &mut scan, with_est);
                node.children.push(scan);
                for hop in hops {
                    let to = hop
                        .to
                        .var
                        .as_ref()
                        .map(|v| format!("{} AS {v}", hop.to.name))
                        .unwrap_or_else(|| hop.to.name.clone());
                    // Sargable conjuncts reference only the (not yet
                    // bound) hop target: they narrow the candidate set
                    // before the kernel runs.
                    let sargable_idx: Vec<usize> = match &hop.to.var {
                        Some(tv) if !bound.contains(tv) => conjuncts
                            .iter()
                            .enumerate()
                            .filter(|(i, (_, refs))| {
                                live[*i] && refs.len() == 1 && refs[0] == *tv
                            })
                            .map(|(i, _)| i)
                            .collect(),
                        _ => Vec::new(),
                    };
                    let target_already_bound =
                        hop.to.var.as_ref().is_some_and(|tv| bound.contains(tv));
                    // Estimated distinct-target cardinality after
                    // sargable narrowing and parameter anchoring;
                    // `target_base` is the unnarrowed type population.
                    let target_base =
                        scan_est(&hop.to.name, hop.to.var.as_deref(), st).max(1.0);
                    let mut target_card = target_base;
                    for &i in &sargable_idx {
                        target_card = filtered_card(target_card, &conjuncts[i].0);
                    }
                    let target_anchored = !sargable_idx.is_empty()
                        || target_already_bound
                        || hop.to.var.as_ref().is_some_and(|tv| {
                            st.params.iter().any(|p| {
                                p.name == *tv && matches!(p.ty, ParamType::Vertex(_))
                            })
                        });
                    if target_already_bound {
                        target_card = 1.0;
                    }
                    let strategy = if hop.darpe.as_single_symbol().is_some() {
                        HopStrategy::Adjacency
                    } else if !semantics.is_enumerative() {
                        // Counting kernels may flip direction when the
                        // target side is anchored and estimated strictly
                        // smaller; forward is kept on ties.
                        if target_anchored && with_est && target_card < rows {
                            HopStrategy::CountingBackward
                        } else {
                            HopStrategy::CountingForward
                        }
                    } else if target_anchored {
                        HopStrategy::EnumBackward
                    } else {
                        HopStrategy::EnumForward
                    };
                    strategies.insert(hop as *const Hop as usize, strategy);
                    let mut hop_node = PlanNode::new(
                        "hop",
                        format!("hop -({})-> {to}: {}", hop.darpe, strategy.describe()),
                    );
                    if with_est {
                        let ctx = st.ctx.unwrap();
                        let (out_rows, cost) = match strategy {
                            HopStrategy::Adjacency => {
                                let sym = hop.darpe.as_single_symbol().unwrap();
                                let fanout = symbol_fanout(sym, ctx);
                                // Anchoring keeps only the narrowed
                                // fraction of the target type; an
                                // unanchored hop keeps every neighbor
                                // (the edge type already constrains the
                                // target type, so no further scaling).
                                let frac = (target_card / target_base).min(1.0);
                                (rows * fanout * frac, rows * fanout)
                            }
                            HopStrategy::CountingForward | HopStrategy::EnumForward => {
                                let e_sub = darpe_edge_total(&hop.darpe, ctx);
                                let reach =
                                    (target_card * REACH_FRACTION).max(1.0);
                                (rows * reach, rows * e_sub)
                            }
                            HopStrategy::CountingBackward | HopStrategy::EnumBackward => {
                                let e_sub = darpe_edge_total(&hop.darpe, ctx);
                                let reach =
                                    (target_card * REACH_FRACTION).max(1.0);
                                (rows * reach, target_card.max(1.0) * e_sub)
                            }
                        };
                        rows = out_rows;
                        cost_total += cost;
                        annotate(&mut hop_node, rows, cost);
                        // Scatter-gather fan-out: kernel hops run
                        // shard-local, so show the per-shard slice of the
                        // estimate (proportional to owned vertices for
                        // rows, stored adjacency entries for cost).
                        if strategy != HopStrategy::Adjacency {
                            if let Some(sh) = ctx.shards {
                                let per = sh.shard_stats();
                                let tot_v =
                                    per.iter().map(|s| s.vertices).sum::<usize>().max(1) as f64;
                                let tot_e =
                                    per.iter().map(|s| s.entries).sum::<usize>().max(1) as f64;
                                for (i, ss) in per.iter().enumerate() {
                                    let mut f = PlanNode::new(
                                        "shard-fanout",
                                        format!(
                                            "shard {i}: {} vertices, {} adj entries ({} cross-shard)",
                                            ss.vertices, ss.entries, ss.cross_entries
                                        ),
                                    );
                                    annotate(
                                        &mut f,
                                        rows * ss.vertices as f64 / tot_v,
                                        cost * ss.entries as f64 / tot_e,
                                    );
                                    hop_node.children.push(f);
                                }
                            }
                        }
                    }
                    // Consume the sargable conjuncts (highest index
                    // first so earlier indices stay valid).
                    for &i in &sargable_idx {
                        live[i] = false;
                        let mut a = PlanNode::new(
                            "sargable-anchor",
                            format!("sargable anchor: {}", expr_label(&conjuncts[i].0)),
                        );
                        if with_est {
                            annotate(&mut a, rows, 0.0);
                        }
                        hop_node.children.push(a);
                    }
                    if let Some(ev) = &hop.edge_var {
                        bound.insert(ev.clone());
                    }
                    if let Some(tv) = &hop.to.var {
                        bound.insert(tv.clone());
                    }
                    emit_ready(
                        &bound, &mut live, &conjuncts, &mut rows, &mut hop_node, with_est,
                    );
                    node.children.push(hop_node);
                }
            }
        }
    }
    for (i, (c, _)) in conjuncts.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let (next, note) = conjunct_rows(i, rows, c);
        let mut f = PlanNode::new(
            "residual-filter",
            format!("residual filter: {}{note}", expr_label(c)),
        );
        if with_est {
            let cost = rows;
            rows = next;
            annotate(&mut f, rows, cost);
        }
        node.children.push(f);
    }
    // Parallel-fold gates: the syntactic exact-merge check keeps its
    // historical EXPLAIN phrasing; clauses only the abstract interpreter
    // can prove safe get a distinct "proven" phrasing so plans show
    // *why* they run parallel.
    if !block.accum.is_empty() {
        let strategy = if accum_exact_merge(&block.accum, st) {
            "morsel-parallel exact-merge fold"
        } else if accum_proven {
            "morsel-parallel proven fold (absint)"
        } else {
            "sequential emission fold"
        };
        let mut a = PlanNode::new(
            "accum",
            format!(
                "ACCUM: {} statement(s), snapshot Map/Reduce, {strategy}",
                block.accum.len()
            ),
        );
        if with_est {
            annotate(&mut a, rows, rows * block.accum.len() as f64);
        }
        node.children.push(a);
    }
    if !block.post_accum.is_empty() {
        let strategy = if post_accum_parallel(&block.post_accum, st) {
            "morsel-parallel fold"
        } else if post_proven {
            "morsel-parallel proven apply (absint)"
        } else {
            "sequential per-vertex apply"
        };
        let mut a = PlanNode::new(
            "post-accum",
            format!("POST_ACCUM: {} statement(s), {strategy}", block.post_accum.len()),
        );
        if with_est {
            annotate(&mut a, rows, rows * block.post_accum.len() as f64);
        }
        node.children.push(a);
    }
    if let Some(g) = &block.group_by {
        node.children.push(PlanNode::new(
            "group-by",
            format!("GROUP BY: {} grouping set(s)", g.sets.len()),
        ));
    }
    for frag in &block.outputs {
        let kind = if frag.items.len() == 1
            && frag.items[0].alias.is_none()
            && matches!(frag.items[0].expr, Expr::Ident(_))
        {
            "vertex set"
        } else if frag.items.iter().any(|i| i.expr.contains_aggregate()) {
            "aggregated table"
        } else {
            "projected table"
        };
        let mut o = PlanNode::new(
            "output",
            format!(
                "output{}: {kind}",
                frag.into.as_ref().map(|n| format!(" INTO {n}")).unwrap_or_default()
            ),
        );
        if with_est {
            annotate(&mut o, rows, rows);
        }
        node.children.push(o);
    }
    if with_est {
        annotate(&mut node, rows, cost_total);
    }
    (
        node,
        BlockPlan {
            semantics,
            conjuncts,
            strategies,
            from_order,
            accum_parallel_proven: accum_proven,
            post_accum_parallel_proven: post_proven,
            rewritten_from,
        },
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::stdlib;
    use pgraph::generators::diamond_chain;

    fn ctx_tables() -> FxHashMap<String, Table> {
        FxHashMap::default()
    }

    #[test]
    fn statless_lowering_matches_graphless_explain_shape() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, None);
        assert_eq!(plan.epoch, 0);
        let text = plan.plan.render();
        assert!(!text.contains("est_rows="), "{text}");
        // Qn's single SELECT block is covered by an executable block plan.
        assert_eq!(plan.blocks.len(), 1);
    }

    #[test]
    fn stats_lowering_annotates_estimates() {
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        assert_eq!(plan.epoch, g.stats().epoch());
        let text = plan.plan.render();
        assert!(text.contains("est_rows="), "{text}");
        assert!(text.contains("est_cost="), "{text}");
        // The anchored source scan estimates a handful of rows, not the
        // whole vertex population.
        assert!(text.contains("SDMC counting kernel"), "{text}");
    }

    #[test]
    fn counting_kernel_flips_backward_when_target_is_cheaper() {
        // No source filter: every vertex is a source. The sargable
        // target anchor narrows targets to a point lookup — strictly
        // cheaper, so the planner runs the counting kernel backward.
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let q = parse_query(
            "CREATE QUERY allpairs (STRING tgtName) {
               SumAccum<int> @@n;
               T = SELECT t FROM V:s -(E>*)- V:t WHERE t.name == tgtName ACCUM @@n += 1;
               PRINT @@n;
             }",
        )
        .unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        let text = plan.plan.render();
        assert!(
            text.contains("SDMC counting kernel, backward from anchored target"),
            "{text}"
        );
        // Without statistics the same query keeps the forward default.
        let plain = lower_query(&q, PathSemantics::AllShortestPaths, None);
        assert!(
            plain.plan.render().contains("SDMC counting kernel, forward"),
            "{}",
            plain.plan.render()
        );
    }

    #[test]
    fn anchored_qn_keeps_forward_on_tie() {
        // Qn anchors both endpoints: one estimated source, ~one
        // estimated target. Ties keep the forward kernel.
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        let text = plan.plan.render();
        assert!(text.contains("SDMC counting kernel, forward"), "{text}");
    }

    #[test]
    fn block_plans_key_on_ast_identity_and_carry_strategies() {
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = lower_query(&q, PathSemantics::NonRepeatedEdge, Some(&ctx));
        let mut seen_backward = false;
        for stmt in &q.body {
            let block = match stmt {
                Stmt::Select(b) => b,
                Stmt::VSetAssign { source: VSetSource::Select(b), .. } => b.as_ref(),
                _ => continue,
            };
            let bp = plan.block_for(block).expect("block plan present");
            assert_eq!(bp.semantics, PathSemantics::NonRepeatedEdge);
            for item in &block.from {
                if let FromItem::Pattern { hops, .. } = item {
                    for hop in hops {
                        let s = bp.strategy_for(hop).expect("strategy chosen");
                        if s == HopStrategy::EnumBackward {
                            seen_backward = true;
                        }
                    }
                }
            }
        }
        assert!(seen_backward, "qn's anchored target should enumerate backward");
    }

    /// Two disjoint FROM items, both filters single-item, vertex-set
    /// output, exact-merge ACCUM: the anchored point-lookup scan is
    /// strictly cheaper than the kernel pattern, so it runs first.
    #[test]
    fn from_reorder_moves_cheaper_item_first() {
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let q = parse_query(
            "CREATE QUERY two (STRING aName) {
               SumAccum<int> @@n;
               S = SELECT s FROM V:s -(E>*)- V:t, V:a
                   WHERE a.name == aName
                   ACCUM @@n += 1;
               PRINT @@n;
             }",
        )
        .unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        let block = match &q.body[1] {
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => b.as_ref(),
            other => panic!("unexpected stmt {other:?}"),
        };
        let bp = plan.block_for(block).expect("block plan present");
        assert_eq!(bp.from_order, vec![1, 0], "point-lookup scan anchors first");
        let text = plan.plan.render();
        assert!(text.contains("from-reorder"), "{text}");
        // Graph-less lowering never reorders (no statistics).
        let plain = lower_query(&q, PathSemantics::AllShortestPaths, None);
        let bp = plain.block_for(block).expect("block plan present");
        assert!(bp.from_order.is_empty());
    }

    /// A cross-item conjunct makes first-occurrence order depend on
    /// which item is outer, so the gate must refuse to reorder.
    #[test]
    fn from_reorder_refuses_cross_item_conjuncts_and_inexact_accums() {
        let (g, _) = diamond_chain(12);
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let cross = parse_query(
            "CREATE QUERY two (STRING aName) {
               SumAccum<int> @@n;
               S = SELECT s FROM V:s -(E>*)- V:t, V:a
                   WHERE a.name == s.name
                   ACCUM @@n += 1;
               PRINT @@n;
             }",
        )
        .unwrap();
        let plan = lower_query(&cross, PathSemantics::AllShortestPaths, Some(&ctx));
        let block = match &cross.body[1] {
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => b.as_ref(),
            other => panic!("unexpected stmt {other:?}"),
        };
        assert!(plan.block_for(block).unwrap().from_order.is_empty());
        // ListAccum is order-dependent: combine order would show through.
        let inexact = parse_query(
            "CREATE QUERY two (STRING aName) {
               ListAccum<int> @@l;
               S = SELECT s FROM V:s -(E>*)- V:t, V:a
                   WHERE a.name == aName
                   ACCUM @@l += 1;
               PRINT @@l;
             }",
        )
        .unwrap();
        let plan = lower_query(&inexact, PathSemantics::AllShortestPaths, Some(&ctx));
        let block = match &inexact.body[1] {
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => b.as_ref(),
            other => panic!("unexpected stmt {other:?}"),
        };
        assert!(plan.block_for(block).unwrap().from_order.is_empty());
    }

    /// A sharded lowering context hangs per-shard fan-out estimates off
    /// every kernel hop.
    #[test]
    fn sharded_ctx_adds_fanout_nodes_under_kernel_hops() {
        use pgraph::shard::{ShardSpec, ShardedGraph};
        let (g, _) = diamond_chain(12);
        let sharded = ShardedGraph::build(&g, ShardSpec::hash(4));
        let tables = ctx_tables();
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: Some(&sharded) };
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        let text = plan.plan.render();
        assert!(text.contains("shard 0:"), "{text}");
        assert!(text.contains("shard 3:"), "{text}");
        assert!(text.contains("cross-shard"), "{text}");
        // Unsharded context: no fan-out nodes.
        let ctx = LowerCtx { graph: &g, tables: &tables, shards: None };
        let plan = lower_query(&q, PathSemantics::AllShortestPaths, Some(&ctx));
        assert!(!plan.plan.render().contains("shard 0:"));
    }
}
