//! Regression suite for the serving hot path: a `Query` parsed once must
//! be reusable for any number of executions with different `args`, with
//! results identical to fresh parses.
//!
//! Audit notes (what could leak between runs of the same parsed query):
//! * `Engine::run` takes `&self` and builds a fresh `Runtime` per call —
//!   locals, vertex sets, accumulator stores and output tables all live
//!   there, not on the engine or the AST.
//! * The AST (`ast::Query`) is pure data with no interior mutability; no
//!   name-index or pattern-compilation cache is written back into it
//!   (DARPE compilation happens per SELECT block inside the run).
//! * Engine-level state (`registry`, `tables`, `semantics`, `budget`)
//!   is only mutable through `&mut self` builders, never during `run`.
//!
//! These tests pin that contract, since the plan cache in `gsql-serve`
//! depends on it.

use gsql_core::{stdlib, Engine, PreparedQuery};
use pgraph::generators::{diamond_chain, sales_graph};
use pgraph::value::Value;

/// One parsed query, 100 executions with alternating argument bindings:
/// every output must equal a fresh parse + run of the same text.
#[test]
fn hundred_reuses_match_fresh_parses() {
    let (g, _) = diamond_chain(12);
    let engine = Engine::new(&g);
    let src = stdlib::qn("V", "E");
    let prepared = PreparedQuery::prepare(&src).unwrap();

    for i in 0..100 {
        // Alternate both endpoints so consecutive runs bind different
        // arguments (and some bind names that match nothing).
        let tgt = format!("v{}", i % 14);
        let args = [("srcName", Value::from("v0")), ("tgtName", Value::from(tgt.as_str()))];
        let reused = engine.run_prepared(&prepared, &args).unwrap();
        let fresh = Engine::new(&g).run_text(&src, &args).unwrap();
        assert_eq!(reused.tables, fresh.tables, "iteration {i}: tables diverged");
        assert_eq!(reused.prints, fresh.prints, "iteration {i}: prints diverged");
        assert_eq!(reused.returned, fresh.returned, "iteration {i}: return diverged");
        assert_eq!(reused.stats, fresh.stats, "iteration {i}: stats diverged");
    }
}

/// Vertex-attached accumulators must reset between runs: `@pathCount`
/// would double on the second run if the store leaked.
#[test]
fn vertex_accumulators_do_not_accumulate_across_runs() {
    let (g, _) = diamond_chain(8);
    let engine = Engine::new(&g);
    let prepared = PreparedQuery::prepare(&stdlib::qn("V", "E")).unwrap();
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v8"))];
    let first = engine.run_prepared(&prepared, &args).unwrap();
    for _ in 0..5 {
        let again = engine.run_prepared(&prepared, &args).unwrap();
        assert_eq!(first.prints, again.prints);
        assert_eq!(first.tables, again.tables);
    }
}

/// One prepared handle shared across engines and threads (the server
/// shape: one plan cache, many workers).
#[test]
fn prepared_handle_is_shareable_across_threads() {
    let g = sales_graph();
    let prepared = PreparedQuery::prepare(stdlib::example5_multi_output()).unwrap();
    let reference = Engine::new(&g).run_prepared(&prepared, &[]).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let p = prepared.clone();
            let g = &g;
            let reference = &reference;
            scope.spawn(move || {
                let engine = Engine::new(g);
                for _ in 0..10 {
                    let out = engine.run_prepared(&p, &[]).unwrap();
                    assert_eq!(out.tables, reference.tables);
                    assert_eq!(out.prints, reference.prints);
                }
            });
        }
    });
}

/// A query that fails at runtime (missing argument) must leave the
/// prepared handle and engine fully usable.
#[test]
fn failed_run_does_not_poison_the_handle() {
    let (g, _) = diamond_chain(6);
    let engine = Engine::new(&g);
    let prepared = PreparedQuery::prepare(&stdlib::qn("V", "E")).unwrap();
    assert!(engine.run_prepared(&prepared, &[]).is_err(), "missing args must fail");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v6"))];
    let ok = engine.run_prepared(&prepared, &args).unwrap();
    assert!(!ok.prints.is_empty() || !ok.tables.is_empty());
}
