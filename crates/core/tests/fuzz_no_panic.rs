//! Fuzz-style robustness property: no input, however malformed, may make
//! the lexer → parser → executor pipeline panic. Bad input must surface
//! as a structured `Err(_)` (or, rarely, parse by accident and run to a
//! normal result) — never as an unwind.
//!
//! Two generators feed the pipeline:
//! * arbitrary byte soup (lossily decoded to UTF-8), and
//! * valid stdlib queries with random mutations applied (truncation,
//!   deletion, splicing of metacharacters, byte swaps) — closer to the
//!   parser's "almost valid" attack surface than pure noise.
//!
//! Every run executes inside `catch_unwind` so a panic is reported as a
//! property failure with the offending input, and under a tight resource
//! budget so an accidentally-valid infinite loop cannot hang the suite.

use gsql_core::{stdlib, Budget, Engine};
use pgraph::generators::sales_graph;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Runs one source text through the full pipeline; returns the panic
/// payload message if it unwound.
fn pipeline_panics(source: &str) -> Option<String> {
    let g = sales_graph();
    let budget = Budget::default()
        .with_deadline(Duration::from_secs(2))
        .with_max_binding_rows(100_000)
        .with_max_paths(100_000)
        .with_max_accum_bytes(1 << 24)
        .with_max_while_iters(10_000);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // The static analyzer shares the no-panic contract with the
        // pipeline: any parser-accepted input must lint without
        // unwinding (the shell and server lint before every run).
        if let Ok(q) = gsql_core::parse_query(source) {
            let _ = gsql_core::lint_query(&q, gsql_core::PathSemantics::AllShortestPaths);
        }
        // Engine::run_text covers lex + parse + execute; its own
        // top-level catch_unwind converts executor panics into
        // WorkerPanic errors, which is exactly the no-panic contract.
        let _ = Engine::new(&g).with_budget(budget).run_text(source, &[]);
    }));
    outcome.err().map(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// The seed corpus of valid queries to mutate.
fn corpus() -> Vec<String> {
    vec![
        stdlib::qn("V", "E"),
        stdlib::example4_sales().to_string(),
        stdlib::example5_multi_output().to_string(),
        stdlib::example6_topk_toys().to_string(),
        stdlib::pagerank("Person", "Knows"),
        stdlib::sssp("Person", "Knows"),
    ]
}

/// Characters the GSQL lexer treats as structure — spliced in to hit
/// tokenizer and parser edges.
const METACHARS: &[char] = &[
    '(', ')', '{', '}', '<', '>', '@', '#', '"', '\'', ';', ',', '.', '+', '-', '*', '/', '=',
    ':', '_', '\\', '\n', '\t', '\0', 'é', '🦀',
];

fn mutate(mut text: String, ops: &[(u8, usize, usize)]) -> String {
    for &(kind, a, b) in ops {
        if text.is_empty() {
            break;
        }
        // Snap arbitrary offsets to char boundaries.
        let clamp = |i: usize| {
            let mut i = i % (text.len() + 1);
            while !text.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        let (i, j) = (clamp(a), clamp(b));
        let (lo, hi) = (i.min(j), i.max(j));
        match kind % 4 {
            // Truncate at an arbitrary boundary.
            0 => text.truncate(lo),
            // Delete a span.
            1 => text.replace_range(lo..hi, ""),
            // Splice a metacharacter.
            2 => text.insert(lo, METACHARS[b % METACHARS.len()]),
            // Duplicate a span (repeated tokens, unbalanced brackets).
            _ => {
                let span = text[lo..hi].to_string();
                text.insert_str(hi, &span);
            }
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        if let Some(msg) = pipeline_panics(&source) {
            prop_assert!(false, "pipeline panicked ({msg}) on bytes {bytes:?}");
        }
    }

    #[test]
    fn mutated_valid_queries_never_panic(
        which in 0usize..6,
        ops in prop::collection::vec((0u8..4, 0usize..4096, 0usize..4096), 1..8),
    ) {
        let source = mutate(corpus()[which].clone(), &ops);
        if let Some(msg) = pipeline_panics(&source) {
            prop_assert!(false, "pipeline panicked ({msg}) on mutated query:\n{source}");
        }
    }

    /// Differential oracle for the abstract interpreter (lint pass 6):
    /// whenever the analyzer proves a WHERE clause constant-false, the
    /// block must produce zero rows — and it must do so identically at
    /// parallelism 1 and 4 (the planner uses the proof to prune, the
    /// executor must agree regardless of schedule).
    #[test]
    fn proven_false_filters_yield_zero_rows_at_any_parallelism(
        a in -50i64..50,
        b in -50i64..50,
        op1 in 0usize..6,
        c in -50i64..50,
        d in -50i64..50,
        op2 in 0usize..6,
    ) {
        const OPS: [&str; 6] = ["<", "<=", "==", ">", ">=", "!="];
        let eval = |x: i64, y: i64, op: usize| match op {
            0 => x < y,
            1 => x <= y,
            2 => x == y,
            3 => x > y,
            4 => x >= y,
            _ => x != y,
        };
        let src = format!(
            "CREATE QUERY F () {{
               SumAccum<int> @@n;
               S = SELECT v FROM Customer:v
                   WHERE {a} {o1} {b} AND {c} {o2} {d}
                   ACCUM @@n += 1;
               PRINT @@n;
             }}",
            o1 = OPS[op1],
            o2 = OPS[op2],
        );
        let q = gsql_core::parse_query(&src).unwrap();
        let facts = gsql_core::lint::compute_facts(
            &q,
            gsql_core::PathSemantics::AllShortestPaths,
            &accum::UserAccumRegistry::new(),
        );
        let truth = eval(a, b, op1) && eval(c, d, op2);
        let proven = facts.blocks[0].where_const;
        // Constant comparisons must be decided, and decided correctly.
        prop_assert_eq!(proven, Some(truth), "facts disagree with ground truth:\n{}", src);
        if proven == Some(false) {
            let g = sales_graph();
            let customers = g.vertices_of_type(g.schema().vertex_type_id("Customer").unwrap()).len();
            for par in [1usize, 4] {
                let out = Engine::new(&g).with_parallelism(par).run_text(&src, &[]).unwrap();
                prop_assert_eq!(
                    &out.prints,
                    &vec!["@@n = 0".to_string()],
                    "proven-false filter leaked rows at parallelism {} (of {} candidates):\n{}",
                    par, customers, src
                );
            }
        }
    }
}

/// Hand-picked regression inputs that historically crash naive parsers:
/// unterminated strings, lone sigils, deep nesting, NUL bytes.
#[test]
fn pathological_inputs_never_panic() {
    let cases = [
        "",
        "\"",
        "\"unterminated",
        "@@",
        "@@;",
        "CREATE",
        "CREATE QUERY",
        "CREATE QUERY q() {",
        "CREATE QUERY q() { PRINT",
        "CREATE QUERY q() { PRINT 1 +; }",
        "CREATE QUERY q() { PRINT ((((((((((1)))))))))); }",
        "CREATE QUERY q() { S = SELECT v FROM ; }",
        "CREATE QUERY q() { WHILE DO END; }",
        "CREATE QUERY q() { SumAccum<> @@x; }",
        "\0\0\0",
        "CREATE QUERY q() { PRINT \0; }",
        "-- comment only",
        "CREATE QUERY q(INT n) { PRINT n(); }",
        // Accumulator/column name resolution paths that used to hide
        // bare `unwrap()`s (exec.rs name interning, eval.rs row/table
        // lookups) — all must surface as structured runtime errors.
        "CREATE QUERY q() { R = SELECT c FROM Customer:c ACCUM c.@undeclared += 1; }",
        "CREATE QUERY q() { R = SELECT c FROM Customer:c ACCUM @@ghost += 1; }",
        "CREATE QUERY q() { R = SELECT c FROM Customer:c POST_ACCUM c.@nope += 1; }",
        "CREATE QUERY q() { R = SELECT r FROM Orders:r WHERE r.nosuchcolumn == 1; }",
        "CREATE QUERY q() { R = SELECT c FROM Customer:c WHERE c.nosuchattr > 0; }",
        "CREATE QUERY q() { PRINT lonely.column; }",
        "CREATE QUERY q() { SumAccum<int> @@t; R = SELECT c FROM Customer:c ACCUM @@t += c.missing; }",
        // PR 3 audit: inputs aimed at the lexer's raw-byte token slicing
        // (`ascii_str`) and the typedef type/name destructuring — the
        // spots that held `unwrap()`/`unreachable!()` reachable from
        // untrusted `gsql-serve` request bodies.
        "CREATE QUERY q() { PRINT 1é2; }",
        "CREATE QUERY q() { PRINT é1; }",
        "CREATE QUERY q() { PRINT ident\u{0301}ifier; }",
        "CREATE QUERY q() { PRINT 🦀 + 1; }",
        "CREATE QUERY q() { PRINT 9e; }",
        "CREATE QUERY q() { PRINT 99999999999999999999999999; }",
        "CREATE QUERY q() { PRINT 1e999; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<SELECT x> T; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<INT INT> T; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<x y> T; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<WHILE score> T; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<> T; }",
        "CREATE QUERY q() { TYPEDEF TUPLE<INT a,> T; }",
        "POST_ACC\u{fe}UM",
        "post-acc",
        "CREATE QUERY q() { S = SELECT v FROM V:v POST-ACC; }",
    ];
    for source in cases {
        if let Some(msg) = pipeline_panics(source) {
            panic!("pipeline panicked ({msg}) on {source:?}");
        }
    }
}

// ---- WAL replayer robustness ---------------------------------------------
//
// The crash-recovery path shares the no-panic contract: a WAL file is
// untrusted input (torn tails, bit rot, truncation at any byte), so
// `decode_frames` must classify whatever it finds as a structured
// `FrameStop` — and replaying decodable-but-nonsensical ops through
// `apply_batch` must surface `GraphError`s, never unwind.

use pgraph::mutate::{apply_batch, MutationOp};
use pgraph::schema::VTypeId;
use pgraph::value::Value;
use pgraph::wal::{checkpoint_from_str, decode_frames, encode_frame, FrameStop};

/// Runs arbitrary bytes through the full recovery surface: frame
/// decoding, then batch application of whatever decoded, then checkpoint
/// parsing of the same bytes as text.
fn wal_recovery_panics(bytes: &[u8]) -> Option<String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (batches, good_end, stop) = decode_frames(bytes);
        assert!(good_end <= bytes.len());
        // A clean stop must consume the whole buffer or end exactly at
        // the last complete frame boundary.
        if matches!(stop, FrameStop::Eof) {
            assert_eq!(good_end, bytes.len());
        }
        let mut g = sales_graph();
        for b in batches {
            let _ = apply_batch(&mut g, &b.ops);
        }
        let _ = checkpoint_from_str(&String::from_utf8_lossy(bytes));
    }));
    outcome.err().map(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// A small valid WAL image to mutate: three frames of real ops.
fn valid_wal_image() -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&encode_frame(
        1,
        &[MutationOp::AddVertex {
            vtype: VTypeId(0),
            attrs: vec![Value::Str("erin".into())],
        }],
    ));
    buf.extend_from_slice(&encode_frame(
        2,
        &[
            MutationOp::SetVertexAttr { v: pgraph::graph::VertexId(0), attr: 0, value: Value::Int(7) },
            MutationOp::DeleteVertex { v: pgraph::graph::VertexId(1) },
        ],
    ));
    buf.extend_from_slice(&encode_frame(3, &[MutationOp::DeleteEdge { e: pgraph::graph::EdgeId(0) }]));
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_replay_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Some(msg) = wal_recovery_panics(&bytes) {
            prop_assert!(false, "WAL recovery panicked ({msg}) on bytes {bytes:?}");
        }
    }

    #[test]
    fn wal_replay_never_panics_on_mutated_framings(
        flips in prop::collection::vec((0usize..4096, 0u8..8), 0..6),
        cut in 0usize..4096,
        splice in prop::collection::vec(any::<u8>(), 0..32),
        at in 0usize..4096,
    ) {
        // Start from a valid image and corrupt it the way real storage
        // fails: bit flips, truncation, and foreign bytes spliced in.
        let mut img = valid_wal_image();
        for &(pos, bit) in &flips {
            let len = img.len();
            if len > 0 {
                img[pos % len] ^= 1 << bit;
            }
        }
        img.truncate(cut.min(img.len()).max(1));
        let at = at % (img.len() + 1);
        img.splice(at..at, splice.iter().copied());
        if let Some(msg) = wal_recovery_panics(&img) {
            prop_assert!(false, "WAL recovery panicked ({msg}) on mutated image {img:?}");
        }
    }
}

/// Deterministic torn/corrupt framings every recovery must classify:
/// each one decodes to a prefix of good frames plus a structured stop —
/// never a panic, and never a claim of cleanliness for a damaged tail.
#[test]
fn torn_and_corrupt_framings_classify_cleanly() {
    let img = valid_wal_image();
    // Every truncation point of a valid image is a torn tail (or clean
    // at exact frame boundaries).
    for cut in 0..img.len() {
        let (batches, good_end, stop) = decode_frames(&img[..cut]);
        assert!(good_end <= cut);
        assert!(
            matches!(stop, FrameStop::Eof | FrameStop::TornTail),
            "cut at {cut}: unexpected stop {stop:?}"
        );
        assert!(batches.len() <= 3);
    }
    // A flipped payload byte in the last frame must be caught by CRC.
    let mut bad = img.clone();
    let n = bad.len();
    bad[n - 1] ^= 0x40;
    let (batches, _, stop) = decode_frames(&bad);
    assert_eq!(batches.len(), 2, "first two frames still replay");
    assert!(matches!(stop, FrameStop::BadCrc), "got {stop:?}");
}
