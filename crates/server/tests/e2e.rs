//! End-to-end tests: a real `Server` on a loopback ephemeral port, real
//! TCP clients, covering the issue's acceptance criteria: correct
//! results (byte-identical to a local engine run), prepared-statement
//! flow, load shedding (429/503), body cap (413), budget trips (422),
//! client-disconnect cancellation (499 path), metrics reconciliation and
//! graceful drain.

use gsql_serve::client::Client;
use gsql_serve::json::{write_json, Json};
use gsql_serve::{handlers, Server, ServerConfig};
use gsql_core::stdlib;
use gsql_core::Engine;
use pgraph::generators::diamond_chain;
use pgraph::value::Value;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A query whose runtime scales with `n` (one governed WHILE iteration
/// per count), used to hold the concurrency gate open and to exercise
/// deadlines and cancellation.
const SPIN: &str = "CREATE QUERY Spin (int n) {
  SumAccum<int> @@s;
  WHILE @@s < n LIMIT 1000000000 DO @@s += 1; END;
  PRINT @@s;
}";

fn start(tweak: impl FnOnce(&mut ServerConfig)) -> (Server, std::net::SocketAddr) {
    let mut cfg = ServerConfig::default();
    tweak(&mut cfg);
    let server =
        Server::start(cfg, pgraph::wal::LiveGraph::in_memory(diamond_chain(12).0)).expect("server starts");
    let addr = server.local_addr();
    (server, addr)
}

fn qn_body(tgt: &str) -> String {
    let mut q = String::new();
    write_json(&mut q, &Json::Str(stdlib::qn("V", "E")));
    format!(r#"{{"query":{q},"args":{{"srcName":"v0","tgtName":"{tgt}"}}}}"#)
}

/// Serializes the deterministic result of a local engine run through the
/// same writer the server uses, for byte-identical comparison.
fn local_result(src: &str, args: &[(&str, Value)]) -> String {
    let graph = diamond_chain(12).0;
    let out = Engine::new(&graph).run_text(src, args).expect("local run");
    let mut s = String::new();
    write_json(&mut s, &handlers::result_json(&out));
    s
}

fn result_bytes(resp: &gsql_serve::client::ClientResponse) -> String {
    let j = resp.json().expect("response is JSON");
    assert_eq!(j.get("ok"), Some(&Json::Bool(true)), "body: {j}");
    let mut s = String::new();
    write_json(&mut s, j.get("result").expect("has result"));
    s
}

#[test]
fn query_round_trip_is_byte_identical_to_local_engine() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    for tgt in ["v4", "v7", "v4"] {
        let resp = c.post_json("/query", &[], &qn_body(tgt)).unwrap();
        assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
        let expected = local_result(
            &stdlib::qn("V", "E"),
            &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str(tgt.into()))],
        );
        assert_eq!(result_bytes(&resp), expected, "server and local results must match");
    }

    // Same text three times: first parse is a miss, the rest are hits.
    let m = c.get("/metrics").unwrap().json().unwrap();
    assert_eq!(m.get("plan_cache_misses").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("plan_cache_hits").and_then(Json::as_i64), Some(2));
    server.shutdown();
}

#[test]
fn prepared_statement_flow_reexecutes_with_fresh_args() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    let mut q = String::new();
    write_json(&mut q, &Json::Str(stdlib::qn("V", "E")));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    let j = resp.json().unwrap();
    let id = j.get("id").and_then(Json::as_str).expect("prepare returns id").to_string();
    assert_eq!(j.get("query").and_then(Json::as_str), Some("Qn"));

    for tgt in ["v2", "v5", "v9", "v2"] {
        let body = format!(r#"{{"args":{{"srcName":"v0","tgtName":"{tgt}"}}}}"#);
        let resp = c.post_json(&format!("/execute/{id}"), &[], &body).unwrap();
        assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
        let expected = local_result(
            &stdlib::qn("V", "E"),
            &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str(tgt.into()))],
        );
        assert_eq!(result_bytes(&resp), expected);
    }

    let resp = c.post_json("/execute/00000000deadbeef", &[], "{}").unwrap();
    assert_eq!(resp.status, 404);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_without_reading() {
    let (server, addr) = start(|cfg| cfg.max_body_bytes = 1024);
    let mut c = Client::connect(addr).unwrap();
    let huge = format!(r#"{{"query":"{}"}}"#, "x".repeat(4096));
    let resp = c.post_json("/query", &[], &huge).unwrap();
    assert_eq!(resp.status, 413);
    assert_eq!(
        server.shared().metrics.rejected_body.load(Ordering::Relaxed),
        1,
        "413 must be counted"
    );
    server.shutdown();
}

#[test]
fn saturated_gate_sheds_429_while_metrics_stay_responsive() {
    let (server, addr) = start(|cfg| {
        cfg.max_concurrent_queries = 1;
        cfg.default_budget.max_while_iters = None;
    });
    let shared = server.shared().clone();

    // Hold the single execution slot with a long-running query, fired
    // on a raw socket we can abandon later (the watchdog then cancels
    // it, so this test does not wait out a two-billion-iteration loop).
    let body = r#"{"query":"CREATE QUERY Spin (int n) {\n  SumAccum<int> @@s;\n  WHILE @@s < n LIMIT 1000000000 DO @@s += 1; END;\n  PRINT @@s;\n}","args":{"n":2000000000}}"#;
    use std::io::Write as _;
    let mut slow = std::net::TcpStream::connect(addr).unwrap();
    slow.write_all(
        format!("POST /query HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}", body.len())
            .as_bytes(),
    )
    .unwrap();
    slow.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while shared.gate.inflight() == 0 {
        assert!(Instant::now() < deadline, "slow query never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The gate is full: a second query sheds with 429...
    let mut c = Client::connect(addr).unwrap();
    let resp = c.post_json("/query", &[], &qn_body("v3")).unwrap();
    assert_eq!(resp.status, 429, "body: {}", String::from_utf8_lossy(&resp.body));
    assert!(resp.header("retry-after").is_some());
    // ...but /metrics and /healthz bypass the gate and stay live.
    let m = c.get("/metrics").unwrap();
    assert_eq!(m.status, 200);
    assert_eq!(m.json().unwrap().get("rejected_busy").and_then(Json::as_i64), Some(1));
    assert_eq!(c.get("/healthz").unwrap().status, 200);

    // Abandon the slow query; the watchdog cancels it and frees the
    // slot, after which the same query text is admitted again.
    drop(slow);
    let deadline = Instant::now() + Duration::from_secs(10);
    let admitted = loop {
        let resp = c.post_json("/query", &[], &qn_body("v3")).unwrap();
        match resp.status {
            200 => break true,
            429 if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            _ => break false,
        }
    };
    assert!(admitted, "slot must free after the holder is cancelled");
    server.shutdown();
}

#[test]
fn tiny_deadline_trips_422_with_a_report() {
    let (server, addr) = start(|cfg| cfg.default_budget.max_while_iters = None);
    let mut c = Client::connect(addr).unwrap();
    let body = r#"{"query":"CREATE QUERY Spin (int n) {\n  SumAccum<int> @@s;\n  WHILE @@s < n LIMIT 1000000000 DO @@s += 1; END;\n  PRINT @@s;\n}","args":{"n":30000000}}"#;
    let resp = c.post_json("/query", &[("x-gsql-deadline-ms", "5")], body).unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    let err = j.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("deadline-exceeded"));
    assert!(err.get("report").is_some(), "budget trips carry a resource report");
    server.shutdown();
}

#[test]
fn header_budgets_cannot_exceed_server_ceilings() {
    let (server, addr) = start(|cfg| {
        cfg.default_budget.max_while_iters = Some(1000);
    });
    let mut c = Client::connect(addr).unwrap();
    // The client asks for a *larger* iteration budget than the server
    // default; the clamp keeps the server's tighter ceiling.
    let mut q = String::new();
    write_json(&mut q, &Json::Str(SPIN.to_string()));
    let body = format!(r#"{{"query":{q},"args":{{"n":1000000}}}}"#);
    let resp = c
        .post_json("/query", &[("x-gsql-max-while-iters", "999999999")], &body)
        .unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    assert_eq!(
        j.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("iteration-limit")
    );
    server.shutdown();
}

#[test]
fn client_disconnect_cancels_the_running_query() {
    let (server, addr) = start(|cfg| {
        cfg.default_budget.max_while_iters = None;
        // If cancellation were broken, the deadline backstop keeps this
        // test fast — and turns it into a counter mismatch below.
        cfg.default_budget.deadline = Some(Duration::from_secs(20));
    });
    let shared = server.shared().clone();

    // Fire the request on a raw socket without waiting for the
    // response, then vanish mid-execution.
    let body = r#"{"query":"CREATE QUERY Spin (int n) {\n  SumAccum<int> @@s;\n  WHILE @@s < n LIMIT 1000000000 DO @@s += 1; END;\n  PRINT @@s;\n}","args":{"n":2000000000}}"#;
    use std::io::Write as _;
    let head = format!(
        "POST /query HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(head.as_bytes()).unwrap();
    raw.flush().unwrap();
    let started = Instant::now();
    while shared.gate.inflight() == 0 {
        assert!(started.elapsed() < Duration::from_secs(10), "query never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(raw); // disconnect mid-execution

    let deadline = Instant::now() + Duration::from_secs(10);
    while shared.metrics.cancelled.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never cancelled the abandoned query (failed={}, completed={})",
            shared.metrics.failed.load(Ordering::Relaxed),
            shared.metrics.completed.load(Ordering::Relaxed),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation must beat the 20s deadline backstop"
    );

    // Other clients are unaffected.
    let mut c = Client::connect(addr).unwrap();
    let resp = c.post_json("/query", &[], &qn_body("v5")).unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn metrics_reconcile_and_drain_is_graceful() {
    let (server, addr) = start(|_| {});
    let shared = server.shared().clone();
    let mut ok = 0u64;
    let mut bad = 0u64;

    let mut c = Client::connect(addr).unwrap();
    for i in 0..10 {
        let resp = if i % 3 == 2 {
            // A parse error: admitted never, failed never (rejected at
            // the plan cache before execution).
            c.post_json("/query", &[], r#"{"query":"CREATE QUERY broken ("}"#).unwrap()
        } else {
            c.post_json("/query", &[], &qn_body("v6")).unwrap()
        };
        if resp.status == 200 {
            ok += 1;
        } else {
            bad += 1;
        }
    }
    assert_eq!(ok, 7);
    assert_eq!(bad, 3);

    let m = c.get("/metrics").unwrap().json().unwrap();
    let get = |k: &str| m.get(k).and_then(Json::as_i64).unwrap();
    assert_eq!(
        get("admitted"),
        get("completed") + get("failed") + get("cancelled"),
        "admission invariant: {m}"
    );
    assert_eq!(get("completed"), ok as i64, "completed == client-observed 200s");
    let latency_count = m.get("latency").and_then(|l| l.get("count")).and_then(Json::as_i64);
    assert_eq!(latency_count, Some(7));

    server.shutdown();
    // After drain every counter is settled; re-check the invariant on
    // the shared struct directly (the listener is gone).
    let admitted = shared.metrics.admitted.load(Ordering::Relaxed);
    let done = shared.metrics.completed.load(Ordering::Relaxed)
        + shared.metrics.failed.load(Ordering::Relaxed)
        + shared.metrics.cancelled.load(Ordering::Relaxed);
    assert_eq!(admitted, done);
    assert!(Client::connect(addr).is_err() || {
        // Some platforms accept briefly; any request must then fail.
        let mut c = Client::connect(addr).unwrap();
        c.get("/healthz").is_err()
    });
}

#[test]
fn explain_endpoint_matches_core_plan_and_shares_the_cache() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // The cost-annotated plan the core crate computes locally for the
    // same text against the same seed graph — Engine::explain is the
    // lowering execution itself uses.
    let src = stdlib::qn("V", "E");
    let q = gsql_core::parse_query(&src).unwrap();
    let graph = diamond_chain(12).0;
    let plan = Engine::new(&graph)
        .with_semantics(gsql_core::PathSemantics::AllShortestPaths)
        .explain(&q)
        .unwrap();

    let resp = c.post_json("/explain", &[], &qn_body("v4")).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(j.get("query").and_then(Json::as_str), Some("Qn"));
    // Byte-identical to `gsql_shell --explain` / Engine::explain, and
    // cost-annotated from the live snapshot's statistics.
    assert_eq!(j.get("text").and_then(Json::as_str), Some(plan.render().as_str()));
    assert!(
        j.get("text").and_then(Json::as_str).unwrap().contains("est_rows="),
        "server plans carry cost estimates: {j}"
    );
    // The embedded plan JSON round-trips through the server's parser and
    // carries one op object per rendered line.
    let plan_j = j.get("plan").expect("has plan");
    let ops = {
        fn count_ops(j: &Json) -> usize {
            match j {
                Json::Obj(fields) => fields
                    .iter()
                    .map(|(k, v)| usize::from(k == "op") + count_ops(v))
                    .sum(),
                Json::Arr(items) => items.iter().map(count_ops).sum(),
                _ => 0,
            }
        }
        count_ops(plan_j)
    };
    assert_eq!(ops, plan.render().lines().count());

    // An EXPLAIN-prefixed /query returns the same plan text, and the
    // stripped text shares the /explain cache entry (hit, not miss).
    let mut body = String::new();
    write_json(&mut body, &Json::Str(format!("EXPLAIN {src}")));
    let resp2 = c.post_json("/query", &[], &format!(r#"{{"query":{body}}}"#)).unwrap();
    assert_eq!(resp2.status, 200);
    let j2 = resp2.json().unwrap();
    assert_eq!(j2.get("text"), j.get("text"));
    let m = c.get("/metrics").unwrap().json().unwrap();
    assert_eq!(m.get("plan_cache_misses").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("plan_cache_hits").and_then(Json::as_i64), Some(1));
    server.shutdown();
}

#[test]
fn cross_mode_cache_entries_are_not_executable_by_id() {
    // Mode-prefix normalization makes `EXPLAIN <q>`, `CHECK <q>` and
    // `<q>` share one fingerprint. None of those ad-hoc paths pin the
    // entry, so leaking the fingerprint as an /execute id must 404 —
    // otherwise an explain-only or lint-rejected text becomes executable
    // without ever passing the lint-on-prepare gate.
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // Seed the cache through EXPLAIN-prefixed /query (never executed).
    let src = stdlib::qn("V", "E");
    let mut body = String::new();
    write_json(&mut body, &Json::Str(format!("EXPLAIN {src}")));
    let resp = c.post_json("/query", &[], &format!(r#"{{"query":{body}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    // The id /prepare would have returned for the stripped text.
    let leaked = format!("{:016x}", gsql_core::prepared::fingerprint(&src));
    let resp = c.post_json(&format!("/execute/{leaked}"), &[], "{}").unwrap();
    assert_eq!(resp.status, 404, "unprepared cache entry served: {}", String::from_utf8_lossy(&resp.body));

    // A lint-rejected /prepare parses (and caches) the text but must not
    // make it executable either.
    let bad = "CREATE QUERY q () {
  SumAccum<int> @cnt;
  S = SELECT t FROM V:s -(E>)- V:t ACCUM t.@cnt = s.rank;
  PRINT S[S.@cnt];
}";
    let mut q = String::new();
    write_json(&mut q, &Json::Str(bad.to_string()));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 422, "lint gate refuses the prepare");
    let rejected = format!("{:016x}", gsql_core::prepared::fingerprint(bad));
    let resp = c.post_json(&format!("/execute/{rejected}"), &[], "{}").unwrap();
    assert_eq!(resp.status, 404, "lint-rejected text served: {}", String::from_utf8_lossy(&resp.body));

    // An actually-prepared statement still resolves.
    let mut qs = String::new();
    write_json(&mut qs, &Json::Str(src.clone()));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{qs}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    let id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(id, leaked, "prepare pins the same fingerprint id");
    let body = r#"{"params":{"srcName":"v0","tgtName":"v4"}}"#;
    let resp = c.post_json(&format!("/execute/{id}"), &[], body).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    server.shutdown();
}

/// 100 distinct parameter bindings for Qn on diamond_chain(12): every
/// real vertex name plus synthetic misses (empty results are results
/// too — the bytes must still match).
fn hundred_targets() -> Vec<String> {
    let mut targets: Vec<String> = (0..=12).map(|i| format!("v{i}")).collect();
    for i in 0..12 {
        targets.push(format!("d{i}a"));
        targets.push(format!("d{i}b"));
    }
    let mut i = 0;
    while targets.len() < 100 {
        targets.push(format!("none{i}"));
        i += 1;
    }
    targets
}

fn parameterized_reuse_roundtrip(parallelism: usize) {
    let (server, addr) = start(|cfg| cfg.parallelism = parallelism);
    let mut c = Client::connect(addr).unwrap();

    let mut q = String::new();
    write_json(&mut q, &Json::Str(stdlib::qn("V", "E")));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    let id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();

    for tgt in hundred_targets() {
        let body = format!(r#"{{"params":{{"srcName":"v0","tgtName":"{tgt}"}}}}"#);
        let resp = c.post_json(&format!("/execute/{id}"), &[], &body).unwrap();
        assert_eq!(resp.status, 200, "tgt {tgt}: {}", String::from_utf8_lossy(&resp.body));
        let via_prepared = result_bytes(&resp);
        // A fresh unprepared /query with the same binding must be
        // byte-identical.
        let resp = c.post_json("/query", &[], &qn_body(&tgt)).unwrap();
        assert_eq!(resp.status, 200, "tgt {tgt}");
        assert_eq!(via_prepared, result_bytes(&resp), "tgt {tgt}");
        // ...and so must a local engine run.
        let expected = local_result(
            &stdlib::qn("V", "E"),
            &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str(tgt.clone()))],
        );
        assert_eq!(via_prepared, expected, "tgt {tgt}");
    }
    server.shutdown();
}

#[test]
fn prepared_reuse_100_bindings_byte_identical_parallelism_1() {
    parameterized_reuse_roundtrip(1);
}

#[test]
fn prepared_reuse_100_bindings_byte_identical_parallelism_4() {
    parameterized_reuse_roundtrip(4);
}

#[test]
fn bad_param_bindings_are_refused_422_with_the_param_name() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    let mut q = String::new();
    write_json(&mut q, &Json::Str(stdlib::qn("V", "E")));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    let id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();

    // Missing param: tgtName unbound.
    let resp = c
        .post_json(&format!("/execute/{id}"), &[], r#"{"params":{"srcName":"v0"}}"#)
        .unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let err = resp.json().unwrap();
    let err = err.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-param"));
    assert_eq!(err.get("param").and_then(Json::as_str), Some("tgtName"));
    assert_eq!(err.get("got").and_then(Json::as_str), Some("(missing)"));

    // Type mismatch: srcName is STRING, Int supplied.
    let resp = c
        .post_json(
            &format!("/execute/{id}"),
            &[],
            r#"{"params":{"srcName":7,"tgtName":"v4"}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let err = resp.json().unwrap();
    let err = err.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-param"));
    assert_eq!(err.get("param").and_then(Json::as_str), Some("srcName"));
    assert_eq!(err.get("expected").and_then(Json::as_str), Some("STRING"));
    assert_eq!(err.get("got").and_then(Json::as_str), Some("INT"));

    // Unknown extra binding.
    let resp = c
        .post_json(
            &format!("/execute/{id}"),
            &[],
            r#"{"params":{"srcName":"v0","tgtName":"v4","bogus":1}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 422);
    let err = resp.json().unwrap();
    assert_eq!(
        err.get("error").and_then(|e| e.get("param")).and_then(Json::as_str),
        Some("bogus")
    );

    // Bad-param refusals happen before admission: nothing was admitted
    // beyond the prepare-time lint run, and a correct binding still runs.
    let resp = c
        .post_json(
            &format!("/execute/{id}"),
            &[],
            r#"{"params":{"srcName":"v0","tgtName":"v4"}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn lint_endpoint_and_prepare_gate() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // A clean query lints clean via POST /lint and shares the plan cache.
    let resp = c.post_json("/lint", &[], &qn_body("v4")).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(j.get("query").and_then(Json::as_str), Some("Qn"));
    let lint = j.get("lint").expect("has lint section");
    assert_eq!(lint.get("errors").and_then(Json::as_i64), Some(0));
    assert_eq!(lint.get("warnings").and_then(Json::as_i64), Some(0));

    // The same text via /query is a cache hit: /lint parsed it already.
    let resp = c.post_json("/query", &[], &qn_body("v4")).unwrap();
    assert_eq!(resp.status, 200);
    let m = c.get("/metrics").unwrap().json().unwrap();
    assert_eq!(m.get("plan_cache_misses").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("plan_cache_hits").and_then(Json::as_i64), Some(1));

    // A multi-binding `=` write in ACCUM: A003 (Error) via /lint...
    let bad = "CREATE QUERY q () {
  SumAccum<int> @cnt;
  S = SELECT t FROM V:s -(E>)- V:t ACCUM t.@cnt = s.rank;
  PRINT S[S.@cnt];
}";
    let mut q = String::new();
    write_json(&mut q, &Json::Str(bad.to_string()));
    let resp = c.post_json("/lint", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 200);
    let j = resp.json().unwrap();
    let lint = j.get("lint").expect("has lint section");
    assert_eq!(lint.get("errors").and_then(Json::as_i64), Some(1));
    let code = lint
        .get("diagnostics")
        .and_then(|d| match d {
            Json::Arr(items) => items.first(),
            _ => None,
        })
        .and_then(|d| d.get("code"))
        .and_then(Json::as_str);
    assert_eq!(code, Some("A003"));

    // ...the same via a CHECK-prefixed /query text...
    let mut qc = String::new();
    write_json(&mut qc, &Json::Str(format!("CHECK {bad}")));
    let resp = c.post_json("/query", &[], &format!(r#"{{"query":{qc}}}"#)).unwrap();
    assert_eq!(resp.status, 200, "CHECK reports, it does not fail the request");
    let j = resp.json().unwrap();
    assert_eq!(
        j.get("lint").and_then(|l| l.get("errors")).and_then(Json::as_i64),
        Some(1)
    );

    // ...and /prepare refuses it with 422 so the broken statement is
    // never pinned for /execute.
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    assert_eq!(
        j.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("lint")
    );
    assert!(j.get("lint").is_some(), "422 carries the diagnostics");

    // `x-gsql-lint: off` bypasses the gate (power users own the risk).
    let resp =
        c.post_json("/prepare", &[("x-gsql-lint", "off")], &format!(r#"{{"query":{q}}}"#)).unwrap();
    assert_eq!(resp.status, 200);

    // A warning-only query prepares by default but is refused under
    // `x-gsql-lint: strict` (A001: result discarded).
    let warn_q = "CREATE QUERY q2 () {
  SumAccum<int> @@n;
  S = SELECT v FROM V:v ACCUM @@n += 1;
}";
    let mut qw = String::new();
    write_json(&mut qw, &Json::Str(warn_q.to_string()));
    let resp = c.post_json("/prepare", &[], &format!(r#"{{"query":{qw}}}"#)).unwrap();
    assert_eq!(resp.status, 200, "warnings alone do not refuse a prepare");
    let resp = c
        .post_json("/prepare", &[("x-gsql-lint", "strict")], &format!(r#"{{"query":{qw}}}"#))
        .unwrap();
    assert_eq!(resp.status, 422, "strict mode refuses warnings");

    let m = c.get("/metrics").unwrap().json().unwrap();
    let lint_m = m.get("lint").expect("metrics has lint section");
    assert_eq!(lint_m.get("rejected").and_then(Json::as_i64), Some(2));
    assert!(lint_m.get("checks").and_then(Json::as_i64).unwrap() >= 4);
    server.shutdown();
}

#[test]
fn provably_over_budget_query_is_refused_pre_admission() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // The abstract interpreter proves this loop runs exactly 100
    // iterations (`WHILE true LIMIT 100`); under a request budget of 10
    // the governor trip is guaranteed, so the request is refused with
    // 422 *before* admission — it never occupies an execution slot.
    let spin = "CREATE QUERY Hot () {
  SumAccum<int> @@n;
  WHILE true LIMIT 100 DO @@n += 1; END;
  PRINT @@n;
}";
    let mut q = String::new();
    write_json(&mut q, &Json::Str(spin.to_string()));
    let body = format!(r#"{{"query":{q}}}"#);

    let resp = c.post_json("/query", &[("x-gsql-max-while-iters", "10")], &body).unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    let err = j.get("error").expect("has error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("provably-over-budget"));
    let msg = err.get("message").and_then(Json::as_str).unwrap();
    assert!(
        msg.contains("100") && msg.contains("max_while_iters = 10"),
        "message names the proven bound and the budget: {msg}"
    );

    // The same text under a sufficient budget is admitted and runs.
    let resp = c.post_json("/query", &[], &body).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));

    // /lint exposes the facts the gate consulted, schema-stable.
    let resp = c.post_json("/lint", &[], &body).unwrap();
    assert_eq!(resp.status, 200);
    let j = resp.json().unwrap();
    let facts = j.get("facts").expect("lint response has facts");
    assert_eq!(facts.get("min_while_iters").and_then(Json::as_i64), Some(100));

    // The rejection is counted separately from lint-gate refusals.
    let m = c.get("/metrics").unwrap().json().unwrap();
    let lint_m = m.get("lint").expect("metrics has lint section");
    assert_eq!(lint_m.get("proven_rejections").and_then(Json::as_i64), Some(1));
    assert_eq!(lint_m.get("rejected").and_then(Json::as_i64), Some(0));
    server.shutdown();
}

#[test]
fn profile_header_adds_a_reconciling_profile_section() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // Unprofiled and profiled runs of the same query: identical results.
    let plain = c.post_json("/query", &[], &qn_body("v6")).unwrap();
    assert_eq!(plain.status, 200);
    let profiled =
        c.post_json("/query", &[("x-gsql-profile", "1")], &qn_body("v6")).unwrap();
    assert_eq!(profiled.status, 200);
    assert_eq!(
        result_bytes(&plain),
        result_bytes(&profiled),
        "profiling must not change results"
    );
    let pj = profiled.json().unwrap();
    let profile = pj.get("profile").expect("profiled response has a profile section");
    let report = pj.get("report").expect("has report");

    // The profile root's counters reconcile with the ResourceReport.
    let root = profile.get("root").expect("profile has root");
    for key in ["vertices_touched", "edges_scanned"] {
        assert_eq!(
            root.get(key).and_then(Json::as_i64),
            report.get(key).and_then(Json::as_i64),
            "{key} must reconcile between profile root and report"
        );
    }
    assert!(root.get("vertices_touched").and_then(Json::as_i64).unwrap() > 0);

    // The plain response carries no profile section.
    assert!(plain.json().unwrap().get("profile").is_none());

    // A PROFILE-prefixed query text behaves like the header.
    let src = stdlib::qn("V", "E");
    let mut body = String::new();
    write_json(&mut body, &Json::Str(format!("PROFILE {src}")));
    let resp = c
        .post_json(
            "/query",
            &[],
            &format!(r#"{{"query":{body},"args":{{"srcName":"v0","tgtName":"v6"}}}}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.json().unwrap().get("profile").is_some());

    // /metrics folds per-operator totals from the profiled runs.
    let m = c.get("/metrics").unwrap().json().unwrap();
    let operators = m.get("operators").expect("metrics has operators");
    let query_calls = operators
        .get("query")
        .and_then(|o| o.get("calls"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert_eq!(query_calls, 2, "two profiled runs fold into operator totals");
    let resources = m.get("resources").expect("metrics has resources");
    assert!(resources.get("vertices_touched").and_then(Json::as_i64).unwrap() > 0);
    assert!(resources.get("edges_scanned").and_then(Json::as_i64).unwrap() > 0);
    server.shutdown();
}

/// A mutation statement batch: one vertex, one edge hanging it off v0.
/// diamond_chain(12) has 37 vertices (ids 0..=36), so the provisional id
/// of the inserted vertex is 37.
const MUTATE_SRC: &str = "CREATE QUERY AddW () {
  INSERT VERTEX V (name) VALUES (\"w0\");
  INSERT EDGE E FROM 0 TO 37;
}";

fn mutate_body() -> String {
    let mut q = String::new();
    write_json(&mut q, &Json::Str(MUTATE_SRC.to_string()));
    format!(r#"{{"query":{q}}}"#)
}

#[test]
fn mutate_commits_while_query_rejects_mutating_statements() {
    let (server, addr) = start(|_| {});
    let mut c = Client::connect(addr).unwrap();

    // A mutating query through the read path is refused before commit...
    let resp = c.post_json("/query", &[], &mutate_body()).unwrap();
    assert_eq!(resp.status, 422, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    assert_eq!(
        j.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("mutating-query")
    );
    // ...and nothing changed.
    let before = server.shared().live.snapshot();
    assert_eq!(before.vertex_count(), diamond_chain(12).0.vertex_count());

    // The same text through /mutate commits and reports the batch.
    let resp = c.post_json("/mutate", &[], &mutate_body()).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    let j = resp.json().unwrap();
    let m = j.get("mutation").expect("mutate response carries a mutation section");
    assert_eq!(m.get("ops").and_then(Json::as_i64), Some(2));
    assert_eq!(m.get("inserted_vertices").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("inserted_edges").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("durable"), Some(&Json::Bool(false)), "in-memory server");

    // Readers now see the new snapshot: Qn finds a path v0 -> w0, and
    // the result is byte-identical to a local engine run on a locally
    // mutated copy of the same seed graph.
    let resp = c.post_json("/query", &[], &qn_body("w0")).unwrap();
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    let expected = {
        let mut graph = diamond_chain(12).0;
        let out = Engine::new(&graph).run_text(MUTATE_SRC, &[]).unwrap();
        pgraph::mutate::apply_batch(&mut graph, &out.mutations).unwrap();
        let out = Engine::new(&graph)
            .run_text(
                &stdlib::qn("V", "E"),
                &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str("w0".into()))],
            )
            .unwrap();
        let mut s = String::new();
        write_json(&mut s, &handlers::result_json(&out));
        s
    };
    assert_eq!(result_bytes(&resp), expected);

    // Metrics: the mutate section counts the batch, the wal section
    // reports the non-durable backend, and the admission invariant
    // still reconciles (the 422 counted as failed).
    let m = c.get("/metrics").unwrap().json().unwrap();
    let mutate = m.get("mutate").expect("metrics has mutate section");
    assert_eq!(mutate.get("batches").and_then(Json::as_i64), Some(1));
    assert_eq!(mutate.get("ops").and_then(Json::as_i64), Some(2));
    assert_eq!(mutate.get("wal_errors").and_then(Json::as_i64), Some(0));
    let wal = m.get("wal").expect("metrics has wal section");
    assert_eq!(wal.get("durable"), Some(&Json::Bool(false)));
    assert_eq!(wal.get("read_only"), Some(&Json::Bool(false)));
    let get = |k: &str| m.get(k).and_then(Json::as_i64).unwrap();
    assert_eq!(get("admitted"), get("completed") + get("failed") + get("cancelled"));
    server.shutdown();
}

/// Spawns the real `gsql-serve` binary, returns (child, addr). The
/// child's stdin is kept open (closing it triggers a graceful drain).
#[cfg(unix)]
fn spawn_serve(data_dir: &std::path::Path) -> (std::process::Child, std::net::SocketAddr) {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_gsql-serve"))
        .arg("--graph")
        .arg(":diamond12")
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--wal-fsync")
        .arg("always")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn gsql-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its port")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("gsql-serve listening on http://") {
            break rest.trim().parse().expect("addr parses");
        }
    };
    (child, addr)
}

#[test]
#[cfg(unix)]
fn kill_nine_then_restart_recovers_byte_identical_results() {
    let dir = std::env::temp_dir().join(format!("gsql-e2e-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Generation 1: seed, mutate durably, record query bytes, kill -9.
    let (mut child, addr) = spawn_serve(&dir);
    let before_crash = {
        let mut c = Client::connect(addr).unwrap();
        let resp = c.post_json("/mutate", &[], &mutate_body()).unwrap();
        assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
        let j = resp.json().unwrap();
        let m = j.get("mutation").expect("mutation section");
        assert_eq!(m.get("durable"), Some(&Json::Bool(true)), "--data-dir commits are durable");
        let resp = c.post_json("/query", &[], &qn_body("w0")).unwrap();
        assert_eq!(resp.status, 200);
        result_bytes(&resp)
    };
    child.kill().unwrap(); // SIGKILL: no drain, no final checkpoint
    child.wait().unwrap();

    // Generation 2: recovery replays the WAL suffix; the same query is
    // byte-identical to the pre-crash answer.
    let (mut child, addr) = spawn_serve(&dir);
    {
        let mut c = Client::connect(addr).unwrap();
        let resp = c.post_json("/query", &[], &qn_body("w0")).unwrap();
        assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
        assert_eq!(result_bytes(&resp), before_crash, "recovery must be byte-identical");
        // The replay is visible in the wal metrics.
        let m = c.get("/metrics").unwrap().json().unwrap();
        let wal = m.get("wal").expect("wal section");
        assert_eq!(wal.get("durable"), Some(&Json::Bool(true)));
        assert!(
            wal.get("replayed").and_then(Json::as_i64).unwrap() >= 1,
            "the crash left a WAL suffix to replay: {m}"
        );
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_server_is_byte_identical_and_metrics_reconcile() {
    // A sharded server must serve the exact bytes an unsharded local
    // engine produces, expose the shard topology in /metrics, and keep
    // the admission invariant intact.
    let (server, addr) = start(|cfg| {
        cfg.shards = 4;
        cfg.parallelism = 4;
    });
    let mut c = Client::connect(addr).unwrap();

    let mut ok = 0u64;
    for tgt in ["v4", "v8", "v11"] {
        let resp = c.post_json("/query", &[], &qn_body(tgt)).unwrap();
        assert_eq!(resp.status, 200);
        let want = local_result(
            &stdlib::qn("V", "E"),
            &[("srcName", Value::from("v0")), ("tgtName", Value::from(tgt))],
        );
        assert_eq!(result_bytes(&resp), want, "sharded result must be byte-identical");
        ok += 1;
    }
    // One failure to make the reconciliation non-trivial.
    let resp = c
        .post_json("/query", &[], r#"{"query":"CREATE QUERY bad () { PRINT @@nope; }"}"#)
        .unwrap();
    assert_ne!(resp.status, 200);

    let m = c.get("/metrics").unwrap().json().unwrap();
    let get = |k: &str| m.get(k).and_then(Json::as_i64).unwrap();
    assert_eq!(
        get("admitted"),
        get("completed") + get("failed") + get("cancelled"),
        "admission invariant under sharding: {m}"
    );
    assert_eq!(get("completed"), ok as i64);
    let shard = m.get("shard").expect("shard section");
    assert_eq!(shard.get("count").and_then(Json::as_i64), Some(4));
    assert!(
        shard.get("imbalance_ratio").is_some() && shard.get("hot_shard_busy_ns").is_some(),
        "shard gauges present: {m}"
    );
    server.shutdown();
}
