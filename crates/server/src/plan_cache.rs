//! The prepared-statement plan cache.
//!
//! Every query text is parsed at most once per residency: `POST /query`
//! consults the cache by source fingerprint before touching the lexer,
//! and `POST /prepare` pins an entry and hands back its fingerprint as a
//! statement id for `POST /execute/{id}`. Eviction is LRU over unpinned
//! entries; pinned (explicitly prepared) statements get their own larger
//! cap and only evict LRU-among-pinned beyond it, so a hot prepared
//! workload cannot be flushed by a stream of ad-hoc queries.
//!
//! Safe to share: `Arc<PreparedQuery>` clones out of the lock, and
//! re-execution of a parsed query is stateless (pinned by
//! `crates/core/tests/prepared_reuse.rs`).

use gsql_core::{prepared::fingerprint, PreparedQuery, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
    pinned: bool,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    pinned_count: usize,
}

pub struct PlanCache {
    inner: Mutex<Inner>,
    /// Max unpinned (ad-hoc) entries.
    capacity: usize,
    /// Max pinned (explicitly prepared) entries.
    max_pinned: usize,
    clock: AtomicU64,
}

/// Cache consultation outcome, so callers can bump hit/miss metrics.
pub struct Cached {
    pub prepared: Arc<PreparedQuery>,
    pub hit: bool,
}

impl PlanCache {
    pub fn new(capacity: usize, max_pinned: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            max_pinned: max_pinned.max(1),
            clock: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up `src` by fingerprint, parsing and inserting on miss.
    /// `pin` marks the entry as an explicit prepared statement.
    fn lookup(&self, src: &str, pin: bool) -> Result<Cached> {
        let key = fingerprint(src);
        let now = self.tick();
        {
            let mut guard = self.inner.lock().unwrap();
            let inner = &mut *guard;
            if let Some(e) = inner.map.get_mut(&key) {
                // Guard against fingerprint collisions: the source text
                // must match exactly, else fall through to a fresh parse
                // replacing the colliding entry.
                if e.prepared.source() == src {
                    e.last_used = now;
                    let prepared = e.prepared.clone();
                    let newly_pinned = pin && !e.pinned;
                    e.pinned |= pin;
                    if newly_pinned {
                        inner.pinned_count += 1;
                    }
                    return Ok(Cached { prepared, hit: true });
                }
            }
        }
        // Parse outside the lock: parsing is the expensive part, and a
        // storm of distinct queries must not serialize on the cache.
        let prepared = Arc::new(PreparedQuery::prepare(src)?);
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        if let Some(old) = inner
            .map
            .insert(key, Entry { prepared: prepared.clone(), last_used: now, pinned: pin })
        {
            if old.pinned {
                inner.pinned_count -= 1;
            }
        }
        if pin {
            inner.pinned_count += 1;
        }
        self.evict(inner);
        Ok(Cached { prepared, hit: false })
    }

    /// `POST /query` path: parse-once semantics for ad-hoc texts.
    pub fn get_or_parse(&self, src: &str) -> Result<Cached> {
        self.lookup(src, false)
    }

    /// `POST /prepare` path: pins the plan and returns its wire id.
    pub fn prepare(&self, src: &str) -> Result<(String, Cached)> {
        let cached = self.lookup(src, true)?;
        Ok((format!("{:016x}", cached.prepared.fingerprint()), cached))
    }

    /// `POST /execute/{id}` path: resolves a wire id from `prepare`.
    ///
    /// Only **pinned** entries resolve. Mode-prefix normalization means
    /// an `EXPLAIN`/`CHECK`-prefixed `/query` text shares a fingerprint
    /// with the bare query, so an unpinned ad-hoc entry (which never
    /// passed the lint-on-prepare gate) must not become executable just
    /// because its fingerprint leaked to a client — `/execute/{id}` is
    /// exclusively for statements that went through `/prepare`.
    pub fn get_by_id(&self, id: &str) -> Option<Arc<PreparedQuery>> {
        let key = u64::from_str_radix(id, 16).ok()?;
        let now = self.tick();
        let mut inner = self.inner.lock().unwrap();
        let e = inner.map.get_mut(&key)?;
        if !e.pinned {
            return None;
        }
        e.last_used = now;
        Some(e.prepared.clone())
    }

    /// Evicts LRU entries: unpinned down to `capacity`, pinned down to
    /// `max_pinned` (separately, so neither class starves the other).
    fn evict(&self, inner: &mut Inner) {
        let unpinned = inner.map.len() - inner.pinned_count;
        for (over, pinned_class) in [
            (unpinned.saturating_sub(self.capacity), false),
            (inner.pinned_count.saturating_sub(self.max_pinned), true),
        ] {
            for _ in 0..over {
                if let Some(&victim) = inner
                    .map
                    .iter()
                    .filter(|(_, e)| e.pinned == pinned_class)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                {
                    if inner.map.remove(&victim).is_some_and(|e| e.pinned) {
                        inner.pinned_count -= 1;
                    }
                }
            }
        }
    }

    /// (total entries, pinned entries) — for /metrics and tests.
    pub fn sizes(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        (inner.map.len(), inner.pinned_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(n: usize) -> String {
        format!("CREATE QUERY q{n} () {{ PRINT {n}; }}")
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PlanCache::new(8, 8);
        let src = query(1);
        assert!(!cache.get_or_parse(&src).unwrap().hit);
        assert!(cache.get_or_parse(&src).unwrap().hit);
        assert_eq!(cache.sizes(), (1, 0));
    }

    #[test]
    fn lru_evicts_oldest_unpinned() {
        let cache = PlanCache::new(2, 8);
        let (a, b, c) = (query(1), query(2), query(3));
        cache.get_or_parse(&a).unwrap();
        cache.get_or_parse(&b).unwrap();
        cache.get_or_parse(&a).unwrap(); // refresh a
        cache.get_or_parse(&c).unwrap(); // evicts b
        assert!(cache.get_or_parse(&a).unwrap().hit);
        assert!(!cache.get_or_parse(&b).unwrap().hit, "b must have been evicted");
    }

    #[test]
    fn pinned_entries_survive_adhoc_storms() {
        let cache = PlanCache::new(2, 8);
        let hot = query(0);
        let (id, _) = cache.prepare(&hot).unwrap();
        for n in 1..50 {
            cache.get_or_parse(&query(n)).unwrap();
        }
        assert!(cache.get_by_id(&id).is_some(), "pinned plan must survive");
        let (total, pinned) = cache.sizes();
        assert_eq!(pinned, 1);
        assert!(total <= 3, "unpinned class stays bounded, got {total}");
    }

    #[test]
    fn pinned_class_is_bounded_too() {
        let cache = PlanCache::new(2, 3);
        let ids: Vec<String> =
            (0..6).map(|n| cache.prepare(&query(n)).unwrap().0).collect();
        let (_, pinned) = cache.sizes();
        assert_eq!(pinned, 3);
        assert!(cache.get_by_id(&ids[0]).is_none(), "oldest pinned evicted");
        assert!(cache.get_by_id(&ids[5]).is_some());
    }

    #[test]
    fn parse_errors_do_not_cache() {
        let cache = PlanCache::new(8, 8);
        assert!(cache.get_or_parse("CREATE QUERY broken (").is_err());
        assert_eq!(cache.sizes(), (0, 0));
    }

    #[test]
    fn bad_ids_miss() {
        let cache = PlanCache::new(8, 8);
        assert!(cache.get_by_id("not-hex").is_none());
        assert!(cache.get_by_id("00000000deadbeef").is_none());
    }

    #[test]
    fn unpinned_entries_are_not_executable_by_id() {
        let cache = PlanCache::new(8, 8);
        let src = query(1);
        // An ad-hoc /query parse caches the text but never went through
        // /prepare: its fingerprint must not resolve for /execute/{id}.
        let cached = cache.get_or_parse(&src).unwrap();
        let leaked_id = format!("{:016x}", cached.prepared.fingerprint());
        assert!(cache.get_by_id(&leaked_id).is_none(), "unpinned entry served by id");
        // Once actually prepared, the same id resolves.
        let (id, _) = cache.prepare(&src).unwrap();
        assert_eq!(id, leaked_id);
        assert!(cache.get_by_id(&id).is_some());
    }
}
