//! A deliberately minimal HTTP/1.1 layer over blocking sockets.
//!
//! The build environment vendors no network crates, so `gsql-serve`
//! speaks just enough HTTP/1.1 for its API: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, `Connection: close`
//! honored, and hard limits on header and body size so untrusted peers
//! cannot balloon memory. No chunked encoding, no TLS, no pipelining —
//! a request is read only after the previous response is written.

use std::io::{self, BufRead, Write};

/// Cap on the request line + header section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with query string stripped (none of our endpoints use one).
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are lowercased at parse).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` if the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// Clean end of stream before any request byte (normal keep-alive
    /// teardown) — not an error worth logging.
    Eof,
    /// The declared body exceeds the server's limit → 413.
    BodyTooLarge(u64),
    /// Malformed request line / headers → 400.
    Malformed(String),
    /// Socket-level failure (including read timeouts on idle
    /// connections).
    Io(io::Error),
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Reads one request. `max_body` bounds the accepted `Content-Length`;
/// an oversized body is *not* read — the caller responds 413 and closes.
pub fn read_request<R: BufRead>(r: &mut R, max_body: u64) -> Result<Request, RecvError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();

    // Request line (tolerate a leading CRLF from sloppy clients).
    let request_line = loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(RecvError::Eof);
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RecvError::Malformed("request head too large".into()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if !trimmed.is_empty() {
            break trimmed.to_string();
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(RecvError::Malformed(format!("bad request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!("unsupported version `{version}`")));
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    // Headers.
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(RecvError::Malformed("eof inside headers".into()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RecvError::Malformed("request head too large".into()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header `{trimmed}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<u64>()
                .map_err(|_| RecvError::Malformed(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RecvError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length as usize];
    r.read_exact(&mut body).map_err(|_| RecvError::Malformed("truncated body".into()))?;

    Ok(Request { method, path, headers, body })
}

/// An outgoing response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After` on shedding responses).
    pub extra: Vec<(&'static str, String)>,
    /// Force `Connection: close` after writing.
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra: Vec::new(),
            close: false,
        }
    }

    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra.push((name, value.into()));
        self
    }
}

pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp`; returns `Ok(keep_alive)`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<bool> {
    let keep_alive = !resp.close;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive { "connection: keep-alive\r\n\r\n" } else { "connection: close\r\n\r\n" });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()?;
    Ok(keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RecvError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn strips_query_string_and_tolerates_leading_crlf() {
        let req = parse("\r\nGET /metrics?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let e = parse("POST /q HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(e, RecvError::BodyTooLarge(999999)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), Err(RecvError::Malformed(_))));
        assert!(matches!(parse(""), Err(RecvError::Eof)));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn caps_header_section() {
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(RecvError::Malformed(_))));
    }

    #[test]
    fn response_writes_and_reports_keep_alive() {
        let mut out = Vec::new();
        let keep = write_response(&mut out, &Response::json(200, "{}".as_bytes().to_vec())).unwrap();
        assert!(keep);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2"), "{text}");
        assert!(text.ends_with("{}"), "{text}");
    }
}
