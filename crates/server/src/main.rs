//! `gsql-serve` binary: parse flags, load the graph, run the server
//! until SIGTERM or stdin EOF, then drain and exit 0.

use gsql_serve::{load_graph, parse_args, Server};
use pgraph::wal::LiveGraph;
use std::io::Read as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

// The workspace denies `unsafe_code`; this is its single justified
// exception. Registering a signal handler has no safe-std equivalent
// and pulling in a crate for two syscalls is not worth the dependency.
#[allow(unsafe_code)]
#[cfg(unix)]
fn install_sigterm_handler() {
    // libc is already linked by std; declaring `signal` avoids a
    // dependency while keeping the handler async-signal-safe (it only
    // stores an atomic flag).
    extern "C" fn on_term(_sig: i32) {
        STOP.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;
    // SAFETY: `signal(2)` is called with a valid signal number and a
    // non-capturing `extern "C" fn` that is async-signal-safe: it only
    // performs a relaxed store to a static AtomicBool (no allocation,
    // no locks, no reentrancy into the runtime). Both calls happen once
    // at startup on the main thread, before any worker threads exist.
    unsafe {
        signal(SIGTERM, on_term);
        signal(SIGINT, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, graph_spec) = match parse_args(&argv) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    eprintln!("loading graph {graph_spec} ...");
    let seed = match load_graph(&graph_spec) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("gsql-serve: {e}");
            std::process::exit(2);
        }
    };

    // With --data-dir the durable state wins over the seed: an existing
    // checkpoint + WAL suffix is recovered; the seed only initializes an
    // empty directory.
    let live = match &cfg.data_dir {
        Some(dir) => {
            match LiveGraph::open(dir, seed, cfg.wal_fsync, cfg.checkpoint_every) {
                Ok((live, report)) => {
                    eprintln!(
                        "recovered from {}: checkpoint `{}` (seq {}), {} frame(s) / {} op(s) \
                         replayed, {} skipped, {} byte(s) truncated",
                        dir.display(),
                        report.checkpoint,
                        report.checkpoint_seq,
                        report.frames_replayed,
                        report.ops_replayed,
                        report.frames_skipped,
                        report.truncated_bytes,
                    );
                    for w in &report.warnings {
                        eprintln!("gsql-serve: recovery warning: {w}");
                    }
                    live
                }
                Err(e) => {
                    eprintln!("gsql-serve: cannot recover {}: {e}", dir.display());
                    std::process::exit(2);
                }
            }
        }
        None => LiveGraph::in_memory(seed),
    };
    {
        let g = live.snapshot();
        eprintln!("graph ready: {} vertices, {} edges", g.vertex_count(), g.edge_count());
    }

    install_sigterm_handler();

    let server = match Server::start(cfg, live) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gsql-serve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // Scripts (and the CI smoke test) parse this exact line for the
    // ephemeral port; keep it on stdout and flush immediately.
    println!("gsql-serve listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Stdin EOF is the second shutdown trigger: a supervising process
    // closing our stdin (or a Ctrl-D in a terminal) means "drain".
    std::thread::spawn(|| {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => {
                    STOP.store(true, Ordering::Relaxed);
                    return;
                }
                Ok(_) => {}
            }
        }
    });

    while !STOP.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("gsql-serve: draining ...");
    let shared = server.shared().clone();
    server.shutdown();
    // Clean shutdown: fsync any tail and fold the WAL into a fresh
    // checkpoint so the next start replays nothing.
    if shared.live.is_durable() && !shared.read_only() {
        if let Err(e) = shared.live.flush().and_then(|()| shared.live.checkpoint_now()) {
            eprintln!("gsql-serve: final checkpoint failed: {e}");
        }
    }
    eprintln!("gsql-serve: bye");
}
