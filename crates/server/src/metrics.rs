//! Live server metrics: lock-free counters, a log₂ latency histogram,
//! and aggregated [`ResourceReport`] totals, all exported as JSON by
//! `GET /metrics`.
//!
//! Invariant the e2e suite and `bench_server` reconcile against:
//! `admitted == completed + failed + cancelled` once the server is
//! drained, and every query request is counted exactly once in exactly
//! one of `admitted`, `rejected_busy` (429), `rejected_queue` (503) or
//! `rejected_body` (413).

use crate::json::Json;
use gsql_core::{Profile, ResourceReport};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs; bucket 0 also absorbs sub-microsecond samples.
/// 40 buckets reach ~12.7 days — effectively unbounded.
const BUCKETS: usize = 40;

pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile: the upper bound (in µs) of the first bucket
    /// at which the cumulative count reaches `q * total`. Within 2× of
    /// the true value by construction.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }
}

/// All server counters. Plain atomics; one instance per server, shared
/// by every worker.
#[derive(Default)]
pub struct Metrics {
    /// Query requests that passed admission and began executing.
    pub admitted: AtomicU64,
    /// Shed with 429: the concurrent-query gate was saturated.
    pub rejected_busy: AtomicU64,
    /// Shed with 503: the connection queue was full at accept time.
    pub rejected_queue: AtomicU64,
    /// Rejected with 413: declared body above the configured cap.
    pub rejected_body: AtomicU64,
    /// Admitted queries that finished successfully.
    pub completed: AtomicU64,
    /// Admitted queries that failed (parse/compile/runtime/resource).
    pub failed: AtomicU64,
    /// Admitted queries stopped by client disconnect (a subset of
    /// neither `completed` nor `failed`).
    pub cancelled: AtomicU64,
    /// Plan-cache hits / misses across /query, /prepare and /execute.
    pub plan_hits: AtomicU64,
    pub plan_misses: AtomicU64,
    /// Static-analyzer runs (`POST /lint`, `CHECK`-prefixed query texts,
    /// and the lint-on-prepare gate).
    pub lint_checks: AtomicU64,
    /// Prepares refused with 422 by the lint gate (`Error`-severity
    /// diagnostics, or warnings under `x-gsql-lint: strict`).
    pub lint_rejected: AtomicU64,
    /// Requests refused with 422 by the pre-admission abstract
    /// interpretation gate: the analyzer proved the query would trip the
    /// request's iteration budget (`D003`), so it was never admitted.
    pub proven_rejections: AtomicU64,
    /// Non-empty mutation batches committed via `POST /mutate`.
    pub mutation_batches: AtomicU64,
    /// Individual mutation ops inside those batches.
    pub mutation_ops: AtomicU64,
    /// WAL write failures (each flips the server read-only).
    pub wal_errors: AtomicU64,
    /// Scatter-gather topology: shard count of the active sharded view
    /// (0 until one is built) and its vertex-imbalance ratio in
    /// thousandths (1000 = perfectly balanced).
    pub shard_count: AtomicU64,
    pub shard_imbalance_milli: AtomicU64,
    /// Busiest-shard wall time summed over all queries: each query
    /// contributes the max per-shard `busy_ns` from its resource
    /// report. Large gaps vs mean latency indicate a hot shard.
    pub hot_shard_busy_ns: AtomicU64,
    /// End-to-end query latency (admission to response serialization).
    pub latency: Histogram,
    // Aggregated ResourceReport totals over all executed queries
    // (success and failure both contribute the work they did).
    rows_total: AtomicU64,
    paths_total: AtomicU64,
    while_total: AtomicU64,
    vertices_total: AtomicU64,
    edges_total: AtomicU64,
    morsels_total: AtomicU64,
    peak_accum_bytes: AtomicU64,
    /// Per-operator totals folded from every profiled run (`x-gsql-profile`
    /// requests): operator name → (calls, exclusive self wall-time µs).
    /// BTreeMap keeps `/metrics` output sorted and stable.
    ops: Mutex<BTreeMap<&'static str, OpTotals>>,
}

#[derive(Default, Clone, Copy)]
struct OpTotals {
    calls: u64,
    self_wall_us: u64,
}

impl Metrics {
    /// Records the active scatter-gather topology (shard-cache rebuild).
    pub fn set_shard_topology(&self, count: usize, imbalance_ratio: f64) {
        self.shard_count.store(count as u64, Ordering::Relaxed);
        self.shard_imbalance_milli
            .store((imbalance_ratio * 1000.0).round() as u64, Ordering::Relaxed);
    }

    pub fn absorb_report(&self, r: &ResourceReport) {
        self.rows_total.fetch_add(r.rows_materialized, Ordering::Relaxed);
        self.paths_total.fetch_add(r.paths_enumerated, Ordering::Relaxed);
        self.while_total.fetch_add(r.while_iterations, Ordering::Relaxed);
        self.vertices_total.fetch_add(r.vertices_touched, Ordering::Relaxed);
        self.edges_total.fetch_add(r.edges_scanned, Ordering::Relaxed);
        self.morsels_total.fetch_add(r.morsels_dispatched, Ordering::Relaxed);
        if let Some(hot) = r.shards.iter().map(|s| s.busy_ns).max() {
            self.hot_shard_busy_ns.fetch_add(hot, Ordering::Relaxed);
        }
        self.peak_accum_bytes.fetch_max(r.peak_accum_bytes, Ordering::Relaxed);
    }

    /// Folds one profiled run into the per-operator totals. Uses each
    /// node's *exclusive* wall time (`self_wall`) so the totals sum to
    /// roughly the query's wall clock instead of multiply counting
    /// nested spans.
    pub fn absorb_profile(&self, p: &Profile) {
        let mut ops = self.ops.lock().unwrap();
        p.root.visit(&mut |n| {
            let t = ops.entry(n.op).or_default();
            t.calls += n.calls;
            t.self_wall_us +=
                u64::try_from(n.self_wall().as_micros()).unwrap_or(u64::MAX);
        });
    }

    /// JSON snapshot served by `GET /metrics`.
    pub fn to_json(&self) -> Json {
        let load = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        Json::Obj(vec![
            ("admitted".into(), load(&self.admitted)),
            ("rejected_busy".into(), load(&self.rejected_busy)),
            ("rejected_queue".into(), load(&self.rejected_queue)),
            ("rejected_body".into(), load(&self.rejected_body)),
            ("completed".into(), load(&self.completed)),
            ("failed".into(), load(&self.failed)),
            ("cancelled".into(), load(&self.cancelled)),
            ("plan_cache_hits".into(), load(&self.plan_hits)),
            ("plan_cache_misses".into(), load(&self.plan_misses)),
            (
                "lint".into(),
                Json::Obj(vec![
                    ("checks".into(), load(&self.lint_checks)),
                    ("rejected".into(), load(&self.lint_rejected)),
                    ("proven_rejections".into(), load(&self.proven_rejections)),
                ]),
            ),
            (
                "mutate".into(),
                Json::Obj(vec![
                    ("batches".into(), load(&self.mutation_batches)),
                    ("ops".into(), load(&self.mutation_ops)),
                    ("wal_errors".into(), load(&self.wal_errors)),
                ]),
            ),
            (
                "latency".into(),
                Json::Obj(vec![
                    ("count".into(), Json::Int(self.latency.count() as i64)),
                    ("mean_us".into(), Json::Int(self.latency.mean_micros() as i64)),
                    ("p50_us".into(), Json::Int(self.latency.quantile_micros(0.50) as i64)),
                    ("p99_us".into(), Json::Int(self.latency.quantile_micros(0.99) as i64)),
                ]),
            ),
            (
                "resources".into(),
                Json::Obj(vec![
                    ("rows_materialized".into(), load(&self.rows_total)),
                    ("paths_enumerated".into(), load(&self.paths_total)),
                    ("while_iterations".into(), load(&self.while_total)),
                    ("vertices_touched".into(), load(&self.vertices_total)),
                    ("edges_scanned".into(), load(&self.edges_total)),
                    ("morsels_dispatched".into(), load(&self.morsels_total)),
                    ("peak_accum_bytes".into(), load(&self.peak_accum_bytes)),
                ]),
            ),
            (
                "shard".into(),
                Json::Obj(vec![
                    ("count".into(), load(&self.shard_count)),
                    (
                        "imbalance_ratio".into(),
                        Json::Double(
                            self.shard_imbalance_milli.load(Ordering::Relaxed) as f64 / 1000.0,
                        ),
                    ),
                    ("hot_shard_busy_ns".into(), load(&self.hot_shard_busy_ns)),
                ]),
            ),
            (
                "operators".into(),
                Json::Obj(
                    self.ops
                        .lock()
                        .unwrap()
                        .iter()
                        .map(|(op, t)| {
                            (
                                (*op).to_string(),
                                Json::Obj(vec![
                                    ("calls".into(), Json::Int(t.calls as i64)),
                                    ("self_wall_us".into(), Json::Int(t.self_wall_us as i64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(80));
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!((64..=256).contains(&p99), "p99 {p99} (99th of 100 is still the fast bucket)");
        let p999 = h.quantile_micros(0.999);
        assert!(p999 >= 65_536, "p99.9 {p999} must land in the slow bucket");
    }

    #[test]
    fn histogram_bucket_edges_are_pinned() {
        // Pins the log₂ bucket-index math at its boundaries so the
        // /metrics histogram schema cannot silently shift: bucket `i`
        // counts `[2^i, 2^(i+1))` µs, bucket 0 also absorbs 0 µs, and
        // the top bucket absorbs everything beyond 2^39 µs (u64::MAX
        // saturates there via the u128→u64 conversion).
        let bucket_of = |micros: u64| {
            let h = Histogram::default();
            h.record(Duration::from_micros(micros));
            h.buckets.iter().position(|b| b.load(Ordering::Relaxed) == 1).unwrap()
        };
        assert_eq!(bucket_of(0), 0, "0 µs joins the sub-µs bucket");
        assert_eq!(bucket_of(1), 0);
        for k in 1..(BUCKETS - 1) {
            let p = 1u64 << k;
            assert_eq!(bucket_of(p), k, "2^{k} µs must open bucket {k}");
            assert_eq!(bucket_of(p - 1), k - 1, "2^{k}-1 µs stays in bucket {}", k - 1);
            assert_eq!(bucket_of(p + 1), k, "2^{k}+1 µs stays in bucket {k}");
        }
        // At and beyond the top boundary everything clamps in-range.
        assert_eq!(bucket_of(1u64 << (BUCKETS - 1)), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let h = Histogram::default();
        h.record(Duration::from_secs(u64::MAX)); // as_micros > u64::MAX
        assert_eq!(h.buckets[BUCKETS - 1].load(Ordering::Relaxed), 1);
        // Monotone: a larger sample never lands in a smaller bucket.
        let mut prev = 0;
        for micros in [0, 1, 2, 3, 7, 8, 1000, 1 << 20, 1 << 39, u64::MAX] {
            let b = bucket_of(micros);
            assert!(b >= prev, "bucket({micros}) = {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn snapshot_reconciles() {
        let m = Metrics::default();
        m.admitted.fetch_add(5, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.failed.fetch_add(1, Ordering::Relaxed);
        m.cancelled.fetch_add(1, Ordering::Relaxed);
        let snap = m.to_json();
        let get = |k: &str| snap.get(k).and_then(|v| v.as_i64()).unwrap();
        assert_eq!(get("admitted"), get("completed") + get("failed") + get("cancelled"));
    }
}
