//! Request routing and the query-execution path.
//!
//! Response envelope (all endpoints):
//! * success — `{"ok":true, ...}`; query endpoints put the
//!   deterministic payload under `"result"` (prints/tables/returned)
//!   and the run-dependent accounting under `"report"`/`"elapsed_us"`,
//!   so clients can compare `result` byte-for-byte across runs.
//! * failure — `{"ok":false,"error":{"kind","message"[,"report"]}}`.
//!
//! Status mapping: 200 success; 400 parse/compile/runtime (the query is
//! wrong); 422 resource-budget trips (the query was too expensive —
//! retry with a bigger envelope); 429 concurrency gate; 499 client
//! disconnected mid-run; 500 contained worker panic; 503 accept-queue
//! shed; 404/405/413 the usual HTTP meanings.

use crate::admission::request_budget;
use crate::http::{Request, Response};
use crate::json::{self, write_json, Json};
use crate::server::Shared;
use gsql_core::exec::{QueryOutput, ReturnValue};
use gsql_core::{Engine, ErrorKind, PreparedQuery, ResourceReport};
use pgraph::mutate::BatchSummary;
use pgraph::value::Value;
use pgraph::wal::CommitError;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Routes one parsed request. `stream` is the client socket, borrowed so
/// long-running executions can register with the disconnect watchdog.
pub fn handle(shared: &Shared, req: &Request, stream: &std::net::TcpStream) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/query") => query(shared, req, stream),
        ("POST", "/mutate") => mutate(shared, req, stream),
        ("POST", "/explain") => explain(shared, req),
        ("POST", "/lint") => lint(shared, req),
        ("POST", "/prepare") => prepare(shared, req),
        ("POST", p) if p.starts_with("/execute/") => {
            execute(shared, req, stream, &p["/execute/".len()..])
        }
        (_, "/query" | "/mutate" | "/explain" | "/lint" | "/prepare") => {
            error_response(405, "method-not-allowed", "use POST", None)
        }
        (_, "/healthz" | "/metrics") => error_response(405, "method-not-allowed", "use GET", None),
        (_, p) if p.starts_with("/execute/") => {
            error_response(405, "method-not-allowed", "use POST", None)
        }
        _ => error_response(404, "not-found", "no such endpoint", None),
    }
}

fn healthz(shared: &Shared) -> Response {
    let status = if shared.shutting_down() {
        "draining"
    } else if shared.read_only() {
        "read-only"
    } else {
        "ok"
    };
    Response::json(200, format!(r#"{{"status":"{status}"}}"#))
}

fn metrics(shared: &Shared) -> Response {
    let mut snapshot = shared.metrics.to_json();
    if let Json::Obj(fields) = &mut snapshot {
        let (total, pinned) = shared.plans.sizes();
        fields.push((
            "plan_cache".into(),
            Json::Obj(vec![
                ("entries".into(), Json::Int(total as i64)),
                ("pinned".into(), Json::Int(pinned as i64)),
            ]),
        ));
        fields.push(("queue_depth".into(), Json::Int(shared.queue.depth() as i64)));
        fields.push(("inflight".into(), Json::Int(shared.gate.inflight() as i64)));
        let wal = shared.live.stats();
        let load = |c: &std::sync::atomic::AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        fields.push((
            "wal".into(),
            Json::Obj(vec![
                ("appends".into(), load(&wal.appends)),
                ("fsyncs".into(), load(&wal.fsyncs)),
                ("replayed".into(), load(&wal.replayed)),
                ("bytes".into(), load(&wal.bytes)),
                ("durable".into(), Json::Bool(shared.live.is_durable())),
                ("read_only".into(), Json::Bool(shared.read_only())),
            ]),
        ));
    }
    let mut body = String::new();
    write_json(&mut body, &snapshot);
    Response::json(200, body)
}

/// The execution-mode prefix a query text may carry, mirroring the
/// `EXPLAIN`/`PROFILE` keywords the shell accepts.
#[derive(PartialEq, Clone, Copy)]
enum TextMode {
    Run,
    Explain,
    Profile,
    Check,
}

/// Splits an optional leading `EXPLAIN`/`PROFILE` word off the query
/// text. Purely textual so the remaining source — the part whose plan is
/// reusable across modes — is what the plan cache fingerprints. The
/// remainder is left-trimmed in every case so `EXPLAIN <q>`, `PROFILE
/// <q>` and `<q>` all share one cache entry.
fn strip_mode_prefix(src: &str) -> (TextMode, &str) {
    let trimmed = src.trim_start();
    let word_len = trimmed
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(trimmed.len());
    let word = &trimmed[..word_len];
    if word.eq_ignore_ascii_case("explain") {
        (TextMode::Explain, trimmed[word_len..].trim_start())
    } else if word.eq_ignore_ascii_case("profile") {
        (TextMode::Profile, trimmed[word_len..].trim_start())
    } else if word.eq_ignore_ascii_case("check") {
        (TextMode::Check, trimmed[word_len..].trim_start())
    } else {
        (TextMode::Run, trimmed)
    }
}

/// Whether the request asked for per-operator profiling via the
/// `x-gsql-profile` header (`1`/`true`/`on`).
fn profile_requested(req: &Request) -> bool {
    matches!(
        req.header("x-gsql-profile").map(str::trim),
        Some("1") | Some("true") | Some("on")
    )
}

/// `POST /query` — ad-hoc text; parse-once via the plan cache. The text
/// may start with `EXPLAIN` (returns the plan without executing) or
/// `PROFILE` (executes with per-operator profiling, like the
/// `x-gsql-profile: 1` header).
fn query(shared: &Shared, req: &Request, stream: &std::net::TcpStream) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return *resp,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return error_response(400, "bad-request", "body must contain a string `query` field", None);
    };
    let (mode, src) = strip_mode_prefix(src);
    let args = match parse_call_args(&body) {
        Ok(a) => a,
        Err(resp) => return *resp,
    };
    let cached = match shared.plans.get_or_parse(src) {
        Ok(c) => c,
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            return query_error(shared, &e, false);
        }
    };
    count_cache(shared, cached.hit);
    if mode == TextMode::Explain {
        return explain_response(shared, &cached.prepared, cached.hit);
    }
    if mode == TextMode::Check {
        return lint_response(shared, &cached.prepared, cached.hit);
    }
    let profiled = mode == TextMode::Profile || profile_requested(req);
    run_query(shared, req, stream, &cached.prepared, &args, cached.hit, profiled, false)
}

/// `POST /mutate` — like `/query`, but the batch of mutation ops the
/// query produced (INSERT/UPDATE/DELETE statements) is committed through
/// the WAL after a successful run. The query executes against a pinned
/// pre-write snapshot; its batch becomes visible atomically on commit.
/// Refused with 503 while the server is degraded read-only.
fn mutate(shared: &Shared, req: &Request, stream: &std::net::TcpStream) -> Response {
    if shared.read_only() {
        return error_response(
            503,
            "read-only",
            "a WAL write failed earlier; the server is serving reads only (restart to recover)",
            None,
        )
        .with_header("retry-after", "5");
    }
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return *resp,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return error_response(400, "bad-request", "body must contain a string `query` field", None);
    };
    let (_, src) = strip_mode_prefix(src);
    let args = match parse_call_args(&body) {
        Ok(a) => a,
        Err(resp) => return *resp,
    };
    let cached = match shared.plans.get_or_parse(src) {
        Ok(c) => c,
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            return query_error(shared, &e, false);
        }
    };
    count_cache(shared, cached.hit);
    run_query(shared, req, stream, &cached.prepared, &args, cached.hit, false, true)
}

/// `POST /explain` — return the logical plan without executing. Accepts
/// the same body as `/query` (an optional leading `EXPLAIN`/`PROFILE`
/// word in the text is ignored) and shares its plan cache.
fn explain(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return *resp,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return error_response(400, "bad-request", "body must contain a string `query` field", None);
    };
    let (_, src) = strip_mode_prefix(src);
    let cached = match shared.plans.get_or_parse(src) {
        Ok(c) => c,
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            return query_error(shared, &e, false);
        }
    };
    count_cache(shared, cached.hit);
    explain_response(shared, &cached.prepared, cached.hit)
}

/// Renders the plan envelope shared by `/explain` and `EXPLAIN`-prefixed
/// `/query` texts: the core crate's plan JSON embedded verbatim under
/// `"plan"`, plus the indented text rendering under `"text"` (identical
/// bytes to `gsql_shell --explain` against the same graph). The plan is
/// lowered through [`Engine::explain`] against the current live
/// snapshot, so it is the cost-annotated (`est_rows`/`est_cost`) plan
/// execution would actually use.
fn explain_response(shared: &Shared, prepared: &Arc<PreparedQuery>, cache_hit: bool) -> Response {
    let snapshot = shared.live.snapshot();
    let sharded = shared.shards.for_snapshot(shared.cfg.shards, &snapshot, &shared.metrics);
    let mut engine = Engine::new(&snapshot).with_semantics(shared.cfg.semantics);
    if let Some(sh) = &sharded {
        engine = engine.with_sharding(sh);
    }
    let plan = match engine.explain(prepared.query()) {
        Ok(p) => p,
        Err(e) => return query_error(shared, &e, false),
    };
    let payload = Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("query".into(), Json::Str(prepared.name().to_string())),
        ("plan_cache".into(), Json::Str(cache_tag(cache_hit).into())),
        ("plan".into(), Json::Raw(plan.to_json())),
        ("text".into(), Json::Str(plan.render())),
    ]);
    let mut body = String::new();
    write_json(&mut body, &payload);
    Response::json(200, body)
}

/// `POST /lint` — run the static analyzer without executing. Accepts the
/// same body as `/query` (a leading `EXPLAIN`/`PROFILE`/`CHECK` word in
/// the text is ignored) and shares its plan cache, so a query linted
/// here and then run via `/query` parses exactly once.
fn lint(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return *resp,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return error_response(400, "bad-request", "body must contain a string `query` field", None);
    };
    let (_, src) = strip_mode_prefix(src);
    let cached = match shared.plans.get_or_parse(src) {
        Ok(c) => c,
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            return query_error(shared, &e, false);
        }
    };
    count_cache(shared, cached.hit);
    lint_response(shared, &cached.prepared, cached.hit)
}

/// Renders the diagnostics envelope shared by `/lint` and
/// `CHECK`-prefixed `/query` texts: the core crate's diagnostic JSON
/// embedded verbatim under `"lint"` (the same object
/// `gsql_shell --check --json` prints), plus the text rendering.
fn lint_response(shared: &Shared, prepared: &Arc<PreparedQuery>, cache_hit: bool) -> Response {
    shared.metrics.lint_checks.fetch_add(1, Ordering::Relaxed);
    let (diags, facts) = prepared.diagnostics_and_facts(shared.cfg.semantics);
    let payload = Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("query".into(), Json::Str(prepared.name().to_string())),
        ("plan_cache".into(), Json::Str(cache_tag(cache_hit).into())),
        ("lint".into(), Json::Raw(gsql_core::lint::render_json(&diags))),
        ("text".into(), Json::Str(gsql_core::lint::render_text(&diags, Some(prepared.source())))),
        // The pass-6 abstract-interpretation facts, schema-stable — the
        // same object `gsql_shell` CHECK emits under `facts`.
        ("facts".into(), Json::Raw(facts.render_json())),
    ]);
    let mut body = String::new();
    write_json(&mut body, &payload);
    Response::json(200, body)
}

/// The lint-on-prepare gate: a statement with `Error`-severity
/// diagnostics is refused with 422 before it can be pinned — a client
/// that prepares once and executes thousands of times should hear about
/// an order-dependent accumulator or an exponential pattern at prepare
/// time, not per request. `x-gsql-lint: strict` also refuses warnings;
/// `x-gsql-lint: off` skips the gate entirely.
fn lint_gate(shared: &Shared, req: &Request, prepared: &Arc<PreparedQuery>) -> Option<Response> {
    let lint_header = req.header("x-gsql-lint").map(str::trim).unwrap_or("on");
    if lint_header.eq_ignore_ascii_case("off") {
        return None;
    }
    shared.metrics.lint_checks.fetch_add(1, Ordering::Relaxed);
    let diags = prepared.diagnostics(shared.cfg.semantics);
    let strict = lint_header.eq_ignore_ascii_case("strict");
    let refuse = gsql_core::lint::has_errors(&diags)
        || (strict && diags.iter().any(|d| d.severity >= gsql_core::Severity::Warn));
    if !refuse {
        return None;
    }
    shared.metrics.lint_rejected.fetch_add(1, Ordering::Relaxed);
    let errors = diags.iter().filter(|d| d.severity == gsql_core::Severity::Error).count();
    let payload = Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str("lint".into())),
                (
                    "message".into(),
                    Json::Str(format!(
                        "query refused by static analysis ({errors} error(s){}); see \
                         `lint.diagnostics`, or re-send with `x-gsql-lint: off` to bypass",
                        if strict { ", strict mode" } else { "" }
                    )),
                ),
            ]),
        ),
        ("lint".into(), Json::Raw(gsql_core::lint::render_json(&diags))),
    ]);
    let mut body = String::new();
    write_json(&mut body, &payload);
    Some(Response::json(422, body))
}

/// `POST /prepare` — parse, pin, hand back a statement id.
fn prepare(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return *resp,
    };
    let Some(src) = body.get("query").and_then(Json::as_str) else {
        return error_response(400, "bad-request", "body must contain a string `query` field", None);
    };
    // Parse without pinning first so a lint-refused statement never
    // becomes executable via `/execute/{id}`.
    match shared.plans.get_or_parse(src) {
        Ok(parsed) => {
            count_cache(shared, parsed.hit);
            if let Some(resp) = lint_gate(shared, req, &parsed.prepared) {
                return resp;
            }
        }
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            return query_error(shared, &e, false);
        }
    }
    match shared.plans.prepare(src) {
        Ok((id, cached)) => {
            let out = Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("id".into(), Json::Str(id)),
                ("query".into(), Json::Str(cached.prepared.name().to_string())),
                ("signature".into(), Json::Str(cached.prepared.signature())),
                ("plan_cache".into(), Json::Str(cache_tag(cached.hit).into())),
            ]);
            let mut body = String::new();
            write_json(&mut body, &out);
            Response::json(200, body)
        }
        Err(e) => {
            shared.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            query_error(shared, &e, false)
        }
    }
}

/// `POST /execute/{id}` — run a pinned prepared statement with a params
/// body (`{"params": {name: value, ...}}`; `"args"` is accepted as an
/// alias). Bindings are type-checked against the statement's declared
/// parameters *before* admission: a missing parameter, a type mismatch,
/// or an undeclared name is refused with 422 and a structured
/// `bad-param` error naming the parameter at fault.
fn execute(shared: &Shared, req: &Request, stream: &std::net::TcpStream, id: &str) -> Response {
    let Some(prepared) = shared.plans.get_by_id(id) else {
        return error_response(
            404,
            "unknown-statement",
            &format!("no prepared statement `{id}` (expired or never prepared?)"),
            None,
        );
    };
    let args = if req.body.is_empty() {
        Vec::new()
    } else {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return *resp,
        };
        match parse_call_args(&body) {
            Ok(a) => a,
            Err(resp) => return *resp,
        }
    };
    let arg_refs: Vec<(&str, Value)> = args.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    if let Err(e) = prepared.check_args(&arg_refs) {
        return bind_error_response(&e);
    }
    // Executing a resident plan is by definition a cache hit.
    count_cache(shared, true);
    run_query(shared, req, stream, &prepared, &args, true, profile_requested(req), false)
}

/// Maps a [`gsql_core::BindError`] to the 422 `bad-param` envelope:
/// `{"ok":false,"error":{"kind":"bad-param","param","expected","got","message"}}`.
fn bind_error_response(e: &gsql_core::BindError) -> Response {
    let payload = Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str("bad-param".into())),
                ("param".into(), Json::Str(e.param.clone())),
                ("expected".into(), Json::Str(e.expected.clone())),
                ("got".into(), Json::Str(e.got.clone())),
                ("message".into(), Json::Str(e.to_string())),
            ]),
        ),
    ]);
    let mut body = String::new();
    write_json(&mut body, &payload);
    Response::json(422, body)
}

/// The shared execution path: admission gate → budget → engine run →
/// (optional WAL commit) → metrics → response. `commit_mutations` is
/// true only for `POST /mutate`; read endpoints refuse mutating queries
/// with 422 instead.
#[allow(clippy::too_many_arguments)]
fn run_query(
    shared: &Shared,
    req: &Request,
    stream: &std::net::TcpStream,
    prepared: &Arc<PreparedQuery>,
    args: &[(String, Value)],
    cache_hit: bool,
    profiled: bool,
    commit_mutations: bool,
) -> Response {
    let Some(_permit) = shared.gate.try_acquire() else {
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return error_response(
            429,
            "too-many-queries",
            "concurrent query limit reached; retry shortly",
            None,
        )
        .with_header("retry-after", "1");
    };
    let budget = match request_budget(&shared.cfg, req) {
        Ok(b) => b,
        Err(msg) => return error_response(400, "bad-request", &msg, None),
    };
    // Pre-admission abstract-interpretation gate: when the analyzer
    // proves the query's WHILE loops must exceed this request's
    // iteration budget (`D003`), the run is *guaranteed* to trip the
    // governor — refuse it with the proven bound before it is admitted
    // or occupies an execution slot.
    let facts = prepared.facts(shared.cfg.semantics);
    if let Some(d) = gsql_core::lint::budget_findings(&facts, &budget).into_iter().next() {
        shared.metrics.proven_rejections.fetch_add(1, Ordering::Relaxed);
        return error_response(422, "provably-over-budget", &d.message, None);
    }

    shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    // Pin this request's snapshot: concurrent commits publish new
    // Arcs without disturbing it, so the whole run sees one consistent
    // pre-write view of the graph. The seq pinned alongside it guards
    // the commit below: a batch's vertex/edge ids are only meaningful
    // against this exact snapshot.
    let (snapshot, pinned_seq) = shared.live.snapshot_pinned();
    let sharded = shared.shards.for_snapshot(shared.cfg.shards, &snapshot, &shared.metrics);
    let mut engine = Engine::new(&snapshot)
        .with_semantics(shared.cfg.semantics)
        .with_parallelism(shared.cfg.parallelism)
        .with_budget(budget);
    if let Some(sh) = &sharded {
        engine = engine.with_sharding(sh);
    }
    let outcome = {
        // Register with the watchdog only for the duration of the run:
        // the token must drop before we touch the socket to respond.
        let _watch = shared.watchdog.watch(stream, engine.cancel_handle());
        let arg_refs: Vec<(&str, Value)> =
            args.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        // Lowered-plan execution: the prepared handle's plan slot caches
        // one optimized plan per (snapshot epoch, semantics), so every
        // binding of this statement against this snapshot reuses it.
        engine.run_prepared_with(prepared, &arg_refs, profiled)
    };
    let elapsed = started.elapsed();
    shared.metrics.latency.record(elapsed);

    match outcome {
        Ok((out, profile)) => {
            shared.metrics.absorb_report(&out.report);
            if !out.mutations.is_empty() && !commit_mutations {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                return error_response(
                    422,
                    "mutating-query",
                    &format!(
                        "query produces {} mutation op(s); this endpoint is read-only — \
                         POST it to /mutate",
                        out.mutations.len()
                    ),
                    None,
                );
            }
            let mutation = if commit_mutations {
                match commit_batch(shared, &out, pinned_seq) {
                    Ok(j) => Some(j),
                    Err(resp) => return *resp,
                }
            } else {
                None
            };
            shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
            let mut fields = vec![
                ("ok".into(), Json::Bool(true)),
                ("query".into(), Json::Str(prepared.name().to_string())),
                ("plan_cache".into(), Json::Str(cache_tag(cache_hit).into())),
                ("result".into(), result_json(&out)),
                ("report".into(), report_json(&out.report)),
                ("elapsed_us".into(), Json::Int(elapsed.as_micros().min(i64::MAX as u128) as i64)),
            ];
            if let Some(profile) = profile {
                shared.metrics.absorb_profile(&profile);
                // The core crate's profile JSON verbatim — the same tree
                // gsql_shell --profile --json prints.
                fields.push(("profile".into(), Json::Raw(profile.to_json())));
            }
            if let Some(m) = mutation {
                fields.push(("mutation".into(), m));
            }
            let payload = Json::Obj(fields);
            let mut body = String::new();
            write_json(&mut body, &payload);
            Response::json(200, body)
        }
        Err(e) => query_error(shared, &e, true),
    }
}

/// Commits a successful `/mutate` run's batch through the WAL. Returns
/// the `"mutation"` response field, or the error response: 409 when
/// another writer published a commit after this query pinned its
/// snapshot (the batch's ids were resolved against the pinned view, so
/// they may silently name different entities in the newer graph —
/// optimistic concurrency rejects the whole batch) or when the graph
/// itself rejects the batch, 503 + read-only degradation when the WAL
/// device failed.
fn commit_batch(
    shared: &Shared,
    out: &QueryOutput,
    pinned_seq: u64,
) -> Result<Json, Box<Response>> {
    match shared.live.commit_checked(&out.mutations, Some(pinned_seq)) {
        Ok((summary, seq)) => {
            if !out.mutations.is_empty() {
                shared.metrics.mutation_batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .mutation_ops
                    .fetch_add(out.mutations.len() as u64, Ordering::Relaxed);
            }
            Ok(mutation_json(&summary, out.mutations.len(), seq, shared.live.is_durable()))
        }
        Err(CommitError::Conflict { pinned, committed }) => {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            Err(Box::new(
                error_response(
                    409,
                    "mutation-conflict",
                    &format!(
                        "a concurrent writer committed seq {committed} after this query \
                         pinned seq {pinned}; retry the mutation against the new state"
                    ),
                    None,
                )
                .with_header("retry-after", "0"),
            ))
        }
        Err(CommitError::Graph(msg)) => {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            Err(Box::new(error_response(
                409,
                "mutation-conflict",
                &format!("batch rejected at commit: {msg}"),
                None,
            )))
        }
        Err(CommitError::Wal(msg)) => {
            // Write-ahead failed, so nothing was published: readers
            // still see the last durable state. Degrade to read-only
            // rather than risk diverging memory from the log.
            shared.read_only.store(true, Ordering::Relaxed);
            shared.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            Err(Box::new(
                error_response(
                    503,
                    "wal-error",
                    &format!("WAL append failed ({msg}); server degraded to read-only"),
                    None,
                )
                .with_header("retry-after", "5"),
            ))
        }
    }
}

fn mutation_json(s: &BatchSummary, ops: usize, seq: u64, durable: bool) -> Json {
    Json::Obj(vec![
        ("ops".into(), Json::Int(ops as i64)),
        ("seq".into(), Json::Int(seq as i64)),
        ("durable".into(), Json::Bool(durable)),
        ("inserted_vertices".into(), Json::Int(s.inserted_vertices as i64)),
        ("inserted_edges".into(), Json::Int(s.inserted_edges as i64)),
        ("updated_attrs".into(), Json::Int(s.updated_attrs as i64)),
        ("deleted_vertices".into(), Json::Int(s.deleted_vertices as i64)),
        ("deleted_edges".into(), Json::Int(s.deleted_edges as i64)),
    ])
}

/// Maps an engine error to a response and bumps the outcome counters.
/// `admitted` distinguishes execution failures (counted) from
/// parse-at-the-door failures (never admitted, nothing to count).
fn query_error(shared: &Shared, e: &gsql_core::Error, admitted: bool) -> Response {
    let kind = e.kind();
    if admitted {
        if kind == ErrorKind::Cancelled {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(r) = e.resource_report() {
            shared.metrics.absorb_report(r);
        }
    }
    let status = match kind {
        ErrorKind::Parse | ErrorKind::Compile | ErrorKind::Runtime => 400,
        ErrorKind::Cancelled => 499,
        ErrorKind::WorkerPanic => 500,
        // Deadline/row/path/memory/iteration trips: the request was
        // well-formed but exceeded its envelope.
        _ => 422,
    };
    error_response(status, kind.as_str(), &e.to_string(), e.resource_report())
}

fn error_response(
    status: u16,
    kind: &str,
    message: &str,
    report: Option<&ResourceReport>,
) -> Response {
    let mut fields = vec![
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
    ];
    if let Some(r) = report {
        fields.push(("report".into(), report_json(r)));
    }
    let payload = Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Obj(fields)),
    ]);
    let mut body = String::new();
    write_json(&mut body, &payload);
    Response::json(status, body)
}

fn count_cache(shared: &Shared, hit: bool) {
    let counter = if hit { &shared.metrics.plan_hits } else { &shared.metrics.plan_misses };
    counter.fetch_add(1, Ordering::Relaxed);
}

fn cache_tag(hit: bool) -> &'static str {
    if hit {
        "hit"
    } else {
        "miss"
    }
}

// ---- body / argument parsing --------------------------------------------

fn parse_body(req: &Request) -> Result<Json, Box<Response>> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Box::new(error_response(400, "bad-request", "body is not UTF-8", None)))?;
    let text = if text.trim().is_empty() { "{}" } else { text };
    json::parse(text)
        .map_err(|e| Box::new(error_response(400, "bad-request", &format!("invalid JSON body: {e}"), None)))
}

/// Extracts the `"params"` (or legacy `"args"`) object into named
/// engine arguments. `"params"` wins when both are present.
fn parse_call_args(body: &Json) -> Result<Vec<(String, Value)>, Box<Response>> {
    let Some(args) = body.get("params").or_else(|| body.get("args")) else {
        return Ok(Vec::new());
    };
    let Some(pairs) = args.as_obj() else {
        return Err(Box::new(error_response(
            400,
            "bad-request",
            "`params` must be an object of name -> value",
            None,
        )));
    };
    pairs
        .iter()
        .map(|(name, j)| {
            json::json_to_arg(j).map(|v| (name.clone(), v)).map_err(|e| {
                Box::new(error_response(
                    400,
                    "bad-request",
                    &format!("argument `{name}`: {e}"),
                    None,
                ))
            })
        })
        .collect()
}

// ---- deterministic result serialization ----------------------------------

/// The deterministic portion of a [`QueryOutput`]: prints, tables and the
/// returned value — everything except timing. `bench_server` serializes
/// the output of a local [`Engine::run_text`] through this same function
/// and compares bytes against the server response.
pub fn result_json(out: &QueryOutput) -> Json {
    let tables = out
        .tables
        .iter()
        .map(|(name, t)| (name.clone(), table_json(t)))
        .collect();
    let mut fields = vec![
        ("prints".to_string(), Json::Arr(out.prints.iter().map(|p| Json::Str(p.clone())).collect())),
        ("tables".to_string(), Json::Obj(tables)),
    ];
    let returned = match &out.returned {
        None => Json::Null,
        Some(ReturnValue::Value(v)) => json::value_to_json(v),
        Some(ReturnValue::Table(t)) => Json::Obj(vec![("table".into(), table_json(t))]),
        Some(ReturnValue::VSet(ids)) => Json::Obj(vec![(
            "vset".into(),
            Json::Arr(ids.iter().map(|id| Json::Int(id.0 as i64)).collect()),
        )]),
    };
    fields.push(("returned".to_string(), returned));
    Json::Obj(fields)
}

fn table_json(t: &gsql_core::Table) -> Json {
    Json::Obj(vec![
        ("columns".into(), Json::Arr(t.columns.iter().map(|c| Json::Str(c.clone())).collect())),
        (
            "rows".into(),
            Json::Arr(
                t.rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(json::value_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Resource accounting (run-dependent: includes elapsed time).
pub fn report_json(r: &ResourceReport) -> Json {
    Json::Obj(vec![
        ("rows_materialized".into(), Json::Int(r.rows_materialized as i64)),
        ("paths_enumerated".into(), Json::Int(r.paths_enumerated as i64)),
        ("vertices_touched".into(), Json::Int(r.vertices_touched as i64)),
        ("edges_scanned".into(), Json::Int(r.edges_scanned as i64)),
        ("peak_accum_bytes".into(), Json::Int(r.peak_accum_bytes as i64)),
        ("while_iterations".into(), Json::Int(r.while_iterations as i64)),
        ("elapsed_us".into(), Json::Int(r.elapsed.as_micros().min(i64::MAX as u128) as i64)),
    ])
}
