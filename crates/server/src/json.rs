//! Minimal JSON: a hand-rolled parser and writer (the vendored deps only
//! cover rand/proptest/criterion — no serde in this build environment).
//!
//! Integers and doubles are kept as distinct variants so `Value::Int`
//! round-trips at full `i64` precision (vertex ids and epoch timestamps
//! must not pass through `f64`).

use pgraph::value::Value;
use std::fmt::Write as _;

/// Nesting depth cap for untrusted request bodies.
const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered (we never need key lookup beyond linear scan).
    Obj(Vec<(String, Json)>),
    /// Pre-serialized JSON emitted verbatim by the writer. Write-only:
    /// the parser never produces it. Used to embed documents that
    /// already know how to serialize themselves (e.g. the core crate's
    /// `Plan`/`Profile` JSON) without re-parsing them.
    Raw(String),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

}

impl std::fmt::Display for Json {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self);
        f.write_str(&out)
    }
}

/// Serializes `j` onto `out` (compact, no whitespace).
pub fn write_json(out: &mut String, j: &Json) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Double(d) => write_double(out, *d),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_json(out, v);
            }
            out.push('}');
        }
        Json::Raw(s) => out.push_str(s),
    }
}

/// f64 in shortest round-trip form; non-finite values (which JSON cannot
/// express) degrade to null.
fn write_double(out: &mut String, d: f64) {
    if d.is_finite() {
        // Rust's Display is shortest-roundtrip; ensure a `.0` so the
        // value re-parses as a double, keeping Int/Double distinct.
        let s = format!("{d}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Writes `s` as a JSON string literal with full escaping.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document from text. Errors are human-readable strings
/// (they end up in 400 responses).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_double = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_double = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if is_double {
            text.parse::<f64>()
                .map(Json::Double)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Double))
                .map_err(|_| format!("bad number `{text}`"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: accept and combine; lone
                            // surrogates degrade to U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&hex) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok());
                                    match lo {
                                        Some(lo) if (0xDC00..0xE000).contains(&lo) => {
                                            self.pos += 6;
                                            let code = 0x10000
                                                + ((hex - 0xD800) << 10)
                                                + (lo - 0xDC00);
                                            char::from_u32(code).unwrap_or('\u{FFFD}')
                                        }
                                        _ => '\u{FFFD}',
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hex).unwrap_or('\u{FFFD}')
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| "invalid UTF-8 in string".to_string())?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Converts an engine [`Value`] into wire JSON. Scalars map directly;
/// graph-specific and collection variants use one-key tag objects so the
/// client can reconstruct the exact variant.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Double(d) => Json::Double(*d),
        Value::Str(s) => Json::Str(s.clone()),
        Value::DateTime(secs) => Json::Obj(vec![("datetime".into(), Json::Int(*secs))]),
        Value::Vertex(id) => Json::Obj(vec![("vertex".into(), Json::Int(i64::from(id.0)))]),
        Value::Edge(id) => Json::Obj(vec![("edge".into(), Json::Int(i64::from(id.0)))]),
        Value::Tuple(items) => Json::Obj(vec![(
            "tuple".into(),
            Json::Arr(items.iter().map(value_to_json).collect()),
        )]),
        Value::List(items) => Json::Arr(items.iter().map(value_to_json).collect()),
        Value::Set(items) => Json::Obj(vec![(
            "set".into(),
            Json::Arr(items.iter().map(value_to_json).collect()),
        )]),
        Value::Map(entries) => Json::Obj(vec![(
            "map".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![value_to_json(k), value_to_json(v)]))
                    .collect(),
            ),
        )]),
    }
}

/// Converts a JSON argument into an engine [`Value`] for query binding.
///
/// Scalars map directly. Vertices and datetimes can be passed either as
/// tag objects (`{"vertex": 12}`, `{"datetime": 0}`) or — matching the
/// `gsql_shell --arg` convention — as prefixed strings (`"vertex:12"`,
/// `"datetime:0"`). Arrays become vertex sets when every element is a
/// vertex, otherwise lists.
pub fn json_to_arg(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Double(d) => Ok(Value::Double(*d)),
        Json::Str(s) => {
            if let Some(id) = s.strip_prefix("vertex:") {
                let id = id
                    .parse::<u32>()
                    .map_err(|_| format!("bad vertex id `{id}`"))?;
                Ok(Value::Vertex(pgraph::graph::VertexId(id)))
            } else if let Some(secs) = s.strip_prefix("datetime:") {
                let secs = secs
                    .parse::<i64>()
                    .map_err(|_| format!("bad datetime `{secs}`"))?;
                Ok(Value::DateTime(secs))
            } else {
                Ok(Value::Str(s.clone()))
            }
        }
        Json::Obj(entries) => match entries.as_slice() {
            [(k, Json::Int(id))] if k == "vertex" => {
                let id = u32::try_from(*id).map_err(|_| format!("bad vertex id `{id}`"))?;
                Ok(Value::Vertex(pgraph::graph::VertexId(id)))
            }
            [(k, Json::Int(secs))] if k == "datetime" => Ok(Value::DateTime(*secs)),
            _ => Err("argument objects must be {\"vertex\": id} or {\"datetime\": secs}".into()),
        },
        Json::Arr(items) => {
            let values: Vec<Value> = items
                .iter()
                .map(json_to_arg)
                .collect::<Result<_, _>>()?;
            if !values.is_empty() && values.iter().all(|v| matches!(v, Value::Vertex(_))) {
                Ok(Value::new_set(values))
            } else {
                Ok(Value::List(values))
            }
        }
        // Write-only; the request parser never yields this variant.
        Json::Raw(_) => Err("raw JSON cannot be an argument".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            "null",
            "true",
            "-12",
            "3.5",
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[],\"c\":{\"d\":null}}",
        ];
        for src in cases {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src, "round trip of {src}");
        }
    }

    #[test]
    fn int_precision_is_preserved() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.to_string(), "9007199254740993");
    }

    #[test]
    fn doubles_keep_their_point() {
        assert_eq!(Json::Double(1.0).to_string(), "1.0");
        assert_eq!(parse("1.0").unwrap(), Json::Double(1.0));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\u12\""] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse("\"caf\u{e9} 🦀 \\u00e9\"").unwrap();
        assert_eq!(v, Json::Str("café 🦀 é".into()));
    }

    #[test]
    fn value_round_trip_through_args() {
        let vertex = json_to_arg(&parse("{\"vertex\": 7}").unwrap()).unwrap();
        assert_eq!(vertex, Value::Vertex(pgraph::graph::VertexId(7)));
        let vertex2 = json_to_arg(&Json::Str("vertex:7".into())).unwrap();
        assert_eq!(vertex, vertex2);
        let dt = json_to_arg(&parse("{\"datetime\": 0}").unwrap()).unwrap();
        assert_eq!(dt, Value::DateTime(0));
    }
}
