//! A minimal blocking HTTP/1.1 client for `gsql-serve`, used by the e2e
//! suite and the `bench_server` load generator. Speaks just enough of
//! the protocol to talk to our own server (and keeps connections alive).

use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        json::parse(text)
    }
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// Sends one request and reads the response. `Err` means the
    /// connection is no longer usable (shed, closed, or timed out).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: gsql-serve\r\n");
        for (k, v) in headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        // A server may reject early (e.g. 413 on the declared length)
        // and close its read side while we are still writing the body;
        // the response is already in flight, so a write error must not
        // stop us from reading it.
        let wrote = self
            .writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body))
            .and_then(|()| self.writer.flush());
        match self.read_response() {
            Ok(resp) => Ok(resp),
            Err(read_err) => Err(wrote.err().unwrap_or(read_err)),
        }
    }

    /// POSTs a JSON body.
    pub fn post_json(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<ClientResponse> {
        self.request("POST", path, headers, body.as_bytes())
    }

    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, &[], &[])
    }

    /// Half-closes the write side (the server sees EOF / disconnect).
    pub fn abandon(self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h)?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k == "content-length" {
                    content_length = v.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((k, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, headers, body })
    }
}
