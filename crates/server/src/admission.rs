//! Admission control: the two bounded resources that make the server
//! shed load instead of queueing unboundedly.
//!
//! 1. [`ConnQueue`] — a bounded handoff between the acceptor and the
//!    worker pool. When it is full the acceptor answers `503` inline
//!    and drops the connection; nothing waits.
//! 2. [`QueryGate`] — a cap on queries executing concurrently. A
//!    request that cannot take a permit *immediately* is answered `429`
//!    with `Retry-After`; workers never block on the gate, so cheap
//!    endpoints (`/metrics`, `/healthz`) stay responsive while the gate
//!    is saturated.
//!
//! Per-request [`Budget`]s are derived here too: server defaults from
//! [`crate::config::ServerConfig`], tightened (never loosened beyond the
//! configured ceiling) by `x-gsql-*` request headers.

use crate::config::ServerConfig;
use crate::http::Request;
use gsql_core::Budget;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Bounded MPMC handoff of accepted connections.
pub struct ConnQueue {
    q: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    pub fn new(capacity: usize) -> Self {
        ConnQueue {
            q: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a connection, or returns it when the queue is full (the
    /// caller sheds with 503) or closed (shutdown in progress).
    pub fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.q.lock().unwrap();
        if state.closed || state.items.len() >= self.capacity {
            return Err(conn);
        }
        state.items.push_back(conn);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next connection. Returns `None` only once the
    /// queue is closed *and* drained — a graceful shutdown still serves
    /// everything already admitted.
    pub fn pop(&self) -> Option<TcpStream> {
        let mut state = self.q.lock().unwrap();
        loop {
            if let Some(conn) = state.items.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    /// Begins drain: no new connections are admitted; blocked workers
    /// wake and exit once the backlog is empty.
    pub fn close(&self) {
        self.q.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    pub fn depth(&self) -> usize {
        self.q.lock().unwrap().items.len()
    }
}

/// Non-blocking cap on concurrently executing queries.
pub struct QueryGate {
    inflight: AtomicUsize,
    max: usize,
}

/// RAII permit; dropping releases the slot.
pub struct Permit<'a>(&'a QueryGate);

impl QueryGate {
    pub fn new(max: usize) -> Self {
        QueryGate { inflight: AtomicUsize::new(0), max: max.max(1) }
    }

    /// Takes a slot if one is free, without waiting.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit(self)),
                Err(observed) => current = observed,
            }
        }
    }

    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::Release);
    }
}

/// Builds the resource budget for one request: the server's default
/// budget, with any `x-gsql-*` header overrides clamped to the server's
/// ceilings (a client may tighten its envelope, never escape it).
///
/// Headers: `x-gsql-deadline-ms`, `x-gsql-max-rows`, `x-gsql-max-paths`,
/// `x-gsql-max-accum-bytes`, `x-gsql-max-while-iters`.
pub fn request_budget(cfg: &ServerConfig, req: &Request) -> Result<Budget, String> {
    let mut budget = cfg.default_budget.clone();

    fn parse_u64(req: &Request, name: &str) -> Result<Option<u64>, String> {
        match req.header(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("header {name} expects a non-negative integer, got `{v}`")),
        }
    }

    if let Some(ms) = parse_u64(req, "x-gsql-deadline-ms")? {
        let mut d = Duration::from_millis(ms);
        if let Some(ceiling) = cfg.max_deadline {
            d = d.min(ceiling);
        }
        budget.deadline = Some(d);
    }
    // For the countable caps, "min with the default" clamps: a header
    // can only tighten the envelope the operator configured.
    let clamp = |base: Option<u64>, v: Option<u64>| match (base, v) {
        (Some(b), Some(v)) => Some(b.min(v)),
        (None, v) => v,
        (b, None) => b,
    };
    budget.max_binding_rows = clamp(budget.max_binding_rows, parse_u64(req, "x-gsql-max-rows")?);
    budget.max_paths = clamp(budget.max_paths, parse_u64(req, "x-gsql-max-paths")?);
    budget.max_accum_bytes =
        clamp(budget.max_accum_bytes, parse_u64(req, "x-gsql-max-accum-bytes")?);
    budget.max_while_iters =
        clamp(budget.max_while_iters, parse_u64(req, "x-gsql-max-while-iters")?);
    Ok(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_with(headers: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".into(),
            path: "/query".into(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    #[test]
    fn gate_sheds_beyond_max() {
        let gate = QueryGate::new(2);
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none(), "third permit must shed");
        drop(a);
        assert!(gate.try_acquire().is_some(), "slot frees on drop");
    }

    #[test]
    fn queue_sheds_when_full_and_drains_on_close() {
        let q = ConnQueue::new(1);
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c1).is_ok());
        assert!(q.push(c2).is_err(), "second push must bounce");
        q.close();
        assert!(q.pop().is_some(), "backlog still served after close");
        assert!(q.pop().is_none(), "then drained");
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c3).is_err(), "closed queue admits nothing");
    }

    #[test]
    fn headers_tighten_but_cannot_escape_ceilings() {
        let cfg = ServerConfig {
            default_budget: Budget::default()
                .with_deadline(Duration::from_secs(30))
                .with_max_binding_rows(1000),
            max_deadline: Some(Duration::from_secs(60)),
            ..ServerConfig::default()
        };

        let b = request_budget(&cfg, &request_with(&[])).unwrap();
        assert_eq!(b.deadline, Some(Duration::from_secs(30)));
        assert_eq!(b.max_binding_rows, Some(1000));

        let b = request_budget(
            &cfg,
            &request_with(&[("x-gsql-deadline-ms", "100"), ("x-gsql-max-rows", "10")]),
        )
        .unwrap();
        assert_eq!(b.deadline, Some(Duration::from_millis(100)));
        assert_eq!(b.max_binding_rows, Some(10));

        // Attempts to exceed the ceilings clamp instead.
        let b = request_budget(
            &cfg,
            &request_with(&[("x-gsql-deadline-ms", "999999999"), ("x-gsql-max-rows", "999999")]),
        )
        .unwrap();
        assert_eq!(b.deadline, Some(Duration::from_secs(60)));
        assert_eq!(b.max_binding_rows, Some(1000));

        assert!(request_budget(&cfg, &request_with(&[("x-gsql-max-rows", "lots")])).is_err());
    }
}
