//! Server configuration: defaults, CLI parsing, and graph-spec loading.

use gsql_core::{Budget, PathSemantics};
use pgraph::graph::Graph;
use pgraph::wal::FlushPolicy;
use std::path::PathBuf;
use std::time::Duration;

/// All tunables of one `gsql-serve` instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded accept queue; beyond it connections are shed with 503.
    pub queue_depth: usize,
    /// Queries executing concurrently; beyond it requests shed with 429.
    pub max_concurrent_queries: usize,
    /// Ad-hoc plan-cache entries (parse-once for `POST /query`).
    pub plan_cache_capacity: usize,
    /// Pinned prepared statements (`POST /prepare`).
    pub max_prepared: usize,
    /// Request bodies above this are rejected with 413.
    pub max_body_bytes: u64,
    /// Intra-query Map/kernel threads per request
    /// (`Engine::with_parallelism`).
    pub parallelism: usize,
    /// Scatter-gather shard count (`Engine::with_sharding`); 1 =
    /// unsharded. Output is byte-identical at any value.
    pub shards: usize,
    /// Path-legality semantics for every query.
    pub semantics: PathSemantics,
    /// Default per-request resource envelope (see `--default-*` flags);
    /// request headers may tighten it, never exceed it.
    pub default_budget: Budget,
    /// Hard ceiling for header-supplied deadlines.
    pub max_deadline: Option<Duration>,
    /// Idle keep-alive read timeout before a worker drops a connection.
    pub idle_timeout: Duration,
    /// Durability directory (WAL + checkpoints). `None` = in-memory
    /// only: mutations work but nothing survives a restart.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy for committed mutation batches.
    pub wal_fsync: FlushPolicy,
    /// Mutation batches between automatic checkpoints (0 = checkpoint
    /// only at clean shutdown).
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            queue_depth: 64,
            max_concurrent_queries: 4,
            plan_cache_capacity: 256,
            max_prepared: 1024,
            max_body_bytes: 1 << 20,
            parallelism: 1,
            shards: 1,
            semantics: PathSemantics::AllShortestPaths,
            // Serving defaults are bounded on purpose: an unbounded
            // query on a shared service is an outage, not a feature.
            default_budget: Budget::default()
                .with_deadline(Duration::from_secs(30))
                .with_max_binding_rows(10_000_000)
                .with_max_paths(10_000_000)
                .with_max_accum_bytes(1 << 30)
                .with_max_while_iters(1_000_000),
            max_deadline: Some(Duration::from_secs(120)),
            idle_timeout: Duration::from_secs(30),
            data_dir: None,
            wal_fsync: FlushPolicy::Always,
            checkpoint_every: 256,
        }
    }
}

/// Parses `500ms` / `2s` / `1.5s` / `10m` / bare seconds.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration `{s}` (try 500ms, 2s, 10m)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("invalid duration `{s}`: must be non-negative"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parses plain bytes or `KB`/`MB`/`GB` (binary multiples).
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("GB") {
        (n, 1u64 << 30)
    } else if let Some(n) = s.strip_suffix("MB") {
        (n, 1u64 << 20)
    } else if let Some(n) = s.strip_suffix("KB") {
        (n, 1u64 << 10)
    } else {
        (s, 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * scale)
        .map_err(|_| format!("invalid byte size `{s}` (try 1048576 or 256MB)"))
}

/// Loads a graph spec: a `pgraph::loader` file path or one of the
/// built-in fixtures `:sales`, `:linkedin`, `:diamond30` (more generally
/// `:diamond<n>`), `:snb[=<sf>]` — the same specs `gsql_shell` accepts.
pub fn load_graph(spec: &str) -> Result<Graph, String> {
    match spec {
        ":sales" => Ok(pgraph::generators::sales_graph()),
        ":linkedin" => Ok(pgraph::generators::linkedin_graph()),
        s if s.starts_with(":diamond") => {
            let n = s
                .strip_prefix(":diamond")
                .unwrap_or("")
                .parse::<usize>()
                .map_err(|_| format!("bad diamond spec `{s}` (try :diamond30)"))?;
            Ok(pgraph::generators::diamond_chain(n).0)
        }
        s if s.starts_with(":snb") => {
            let sf = s
                .strip_prefix(":snb")
                .and_then(|r| r.strip_prefix('='))
                .map(|v| v.parse::<f64>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(0.05);
            Ok(ldbc_snb::generate(ldbc_snb::SnbParams::new(sf, 2024)))
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read graph `{path}`: {e}"))?;
            pgraph::loader::load_from_string(&text).map_err(|e| e.to_string())
        }
    }
}

/// Parses CLI arguments into a config plus the graph spec. Returns
/// `Err(usage)` for `--help` or any malformed flag.
pub fn parse_args(argv: &[String]) -> Result<(ServerConfig, String), String> {
    let mut cfg = ServerConfig::default();
    let mut graph_spec: Option<String> = None;
    let mut port: Option<u16> = None;

    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match a.as_str() {
            "--graph" => graph_spec = Some(value("--graph")?),
            "--addr" => cfg.addr = value("--addr")?,
            "--port" => {
                port = Some(
                    value("--port")?
                        .parse()
                        .map_err(|_| "--port expects a port number".to_string())?,
                )
            }
            "--workers" => cfg.workers = parse_pos(&value("--workers")?, "--workers")?,
            "--queue-depth" => {
                cfg.queue_depth = parse_pos(&value("--queue-depth")?, "--queue-depth")?
            }
            "--max-concurrent" => {
                cfg.max_concurrent_queries =
                    parse_pos(&value("--max-concurrent")?, "--max-concurrent")?
            }
            "--plan-cache" => {
                cfg.plan_cache_capacity = parse_pos(&value("--plan-cache")?, "--plan-cache")?
            }
            "--max-prepared" => {
                cfg.max_prepared = parse_pos(&value("--max-prepared")?, "--max-prepared")?
            }
            "--max-body-bytes" => cfg.max_body_bytes = parse_bytes(&value("--max-body-bytes")?)?,
            "--parallelism" => {
                cfg.parallelism = parse_pos(&value("--parallelism")?, "--parallelism")?
            }
            "--shards" => cfg.shards = parse_pos(&value("--shards")?, "--shards")?,
            "--semantics" => {
                let name = value("--semantics")?;
                cfg.semantics = gsql_core::parser::parse_semantics(&name)
                    .ok_or_else(|| format!("unknown semantics `{name}`"))?;
            }
            "--default-deadline" => {
                cfg.default_budget.deadline = Some(parse_duration(&value("--default-deadline")?)?)
            }
            "--max-deadline" => {
                cfg.max_deadline = Some(parse_duration(&value("--max-deadline")?)?)
            }
            "--default-max-rows" => {
                cfg.default_budget.max_binding_rows =
                    Some(parse_u64(&value("--default-max-rows")?, "--default-max-rows")?)
            }
            "--default-max-paths" => {
                cfg.default_budget.max_paths =
                    Some(parse_u64(&value("--default-max-paths")?, "--default-max-paths")?)
            }
            "--default-max-accum-bytes" => {
                cfg.default_budget.max_accum_bytes =
                    Some(parse_bytes(&value("--default-max-accum-bytes")?)?)
            }
            "--idle-timeout" => cfg.idle_timeout = parse_duration(&value("--idle-timeout")?)?,
            "--data-dir" => cfg.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--wal-fsync" => {
                let v = value("--wal-fsync")?;
                cfg.wal_fsync = FlushPolicy::parse(&v)
                    .ok_or_else(|| format!("--wal-fsync expects always|never|every=N, got `{v}`"))?;
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every =
                    parse_u64(&value("--checkpoint-every")?, "--checkpoint-every")?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if let Some(p) = port {
        cfg.addr = format!("127.0.0.1:{p}");
    }
    let graph_spec = graph_spec.ok_or_else(|| format!("--graph is required\n{USAGE}"))?;
    Ok((cfg, graph_spec))
}

fn parse_pos(v: &str, flag: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{flag} expects a positive integer, got `{v}`"))
}

fn parse_u64(v: &str, flag: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("{flag} expects a non-negative integer, got `{v}`"))
}

pub const USAGE: &str = "\
usage: gsql-serve --graph <graph.pg|:sales|:linkedin|:diamond<n>|:snb[=sf]>
                  [--addr HOST:PORT | --port N]      (default 127.0.0.1:0)
                  [--workers N]                      worker threads (8)
                  [--queue-depth N]                  accept backlog before 503 (64)
                  [--max-concurrent N]               executing queries before 429 (4)
                  [--plan-cache N]                   ad-hoc plan cache entries (256)
                  [--max-prepared N]                 pinned prepared statements (1024)
                  [--max-body-bytes N|KB|MB]         request body cap before 413 (1MB)
                  [--parallelism N]                  intra-query threads (1)
                  [--shards N]                       scatter-gather shards (1)
                  [--semantics <flavor>]             path-legality semantics
                  [--default-deadline D]             per-query deadline (30s)
                  [--max-deadline D]                 ceiling for header deadlines (120s)
                  [--default-max-rows N] [--default-max-paths N]
                  [--default-max-accum-bytes N|MB]   governor defaults
                  [--idle-timeout D]                 keep-alive idle cutoff (30s)
                  [--data-dir PATH]                  durability dir: WAL + checkpoints
                  [--wal-fsync always|never|every=N] fsync cadence for commits (always)
                  [--checkpoint-every N]             batches between checkpoints (256)

With --data-dir the graph is durable: every POST /mutate batch is
WAL-logged before it is visible, checkpoints compact the log, and a
restart recovers checkpoint + WAL suffix (the --graph spec only seeds
an empty directory). A WAL write error flips the server read-only
(mutations 503) while queries keep serving; see docs/DURABILITY.md.

The server drains and exits 0 on SIGTERM or stdin EOF.
Per-request budget headers: x-gsql-deadline-ms, x-gsql-max-rows,
x-gsql-max-paths, x-gsql-max-accum-bytes, x-gsql-max-while-iters.
Introspection: POST /explain returns the logical plan without executing;
`x-gsql-profile: 1` on /query or /execute (or a PROFILE-prefixed query
text) adds a per-operator `profile` section to the response, and
aggregated per-operator totals appear under `operators` in /metrics.
The plan/profile formats are documented in docs/PLAN_FORMAT.md.";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let (cfg, spec) = parse_args(&args(&[
            "--graph", ":diamond30", "--port", "7431", "--workers", "3", "--queue-depth", "9",
            "--max-concurrent", "2", "--plan-cache", "16", "--max-body-bytes", "64KB",
            "--parallelism", "4", "--default-deadline", "5s", "--max-deadline", "10s",
        ]))
        .unwrap();
        assert_eq!(spec, ":diamond30");
        assert_eq!(cfg.addr, "127.0.0.1:7431");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 9);
        assert_eq!(cfg.max_concurrent_queries, 2);
        assert_eq!(cfg.plan_cache_capacity, 16);
        assert_eq!(cfg.max_body_bytes, 64 << 10);
        assert_eq!(cfg.parallelism, 4);
        assert_eq!(cfg.default_budget.deadline, Some(Duration::from_secs(5)));
        assert_eq!(cfg.max_deadline, Some(Duration::from_secs(10)));
    }

    #[test]
    fn parses_durability_flags() {
        let (cfg, _) = parse_args(&args(&[
            "--graph", ":sales", "--data-dir", "/tmp/gsql-data", "--wal-fsync", "every=8",
            "--checkpoint-every", "32",
        ]))
        .unwrap();
        assert_eq!(cfg.data_dir.as_deref(), Some(std::path::Path::new("/tmp/gsql-data")));
        assert_eq!(cfg.wal_fsync, FlushPolicy::EveryN(8));
        assert_eq!(cfg.checkpoint_every, 32);
        assert!(parse_args(&args(&["--graph", ":sales", "--wal-fsync", "sometimes"])).is_err());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&args(&["--graph"])).is_err());
        assert!(parse_args(&args(&["--nope"])).is_err());
        assert!(parse_args(&args(&[])).is_err(), "--graph is required");
        assert!(parse_args(&args(&["--graph", ":sales", "--workers", "0"])).is_err());
    }

    #[test]
    fn fixture_specs_load() {
        assert!(load_graph(":sales").is_ok());
        assert_eq!(load_graph(":diamond3").unwrap().vertex_count(), 10);
        assert!(load_graph(":nope").is_err());
        assert!(load_graph("/no/such/file.pg").is_err());
    }
}
