//! # gsql-serve — a concurrent query service over `gsql-core`
//!
//! A long-running, multi-client HTTP service for the GSQL-subset engine:
//! accept queries over the wire, execute them against one shared
//! in-memory graph, and stay predictable under load.
//!
//! Everything is built on `std` only (no external network crates):
//! blocking sockets from [`std::net`], a hand-rolled minimal HTTP/1.1
//! layer ([`http`]), and a hand-rolled JSON codec ([`json`]).
//!
//! The moving parts:
//! * [`server`] — acceptor, bounded worker pool, disconnect watchdog,
//!   graceful drain-then-shutdown;
//! * [`admission`] — bounded connection queue (503 on overflow), a
//!   non-blocking concurrent-query gate (429 when saturated), and
//!   per-request [`gsql_core::Budget`]s derived from server defaults
//!   clamped by `x-gsql-*` request headers;
//! * [`plan_cache`] — parse-once plan cache keyed by source fingerprint,
//!   LRU-evicted, with pinned prepared statements
//!   (`POST /prepare` → `POST /execute/{id}`);
//! * [`metrics`] — lock-free counters, a log₂ latency histogram and
//!   aggregated [`gsql_core::ResourceReport`] totals, served by
//!   `GET /metrics`;
//! * [`handlers`] — endpoint routing and the error→status mapping.
//!
//! The graph is a [`pgraph::wal::LiveGraph`]: every request pins an
//! immutable snapshot (`Arc<Graph>`) and builds a throwaway
//! [`gsql_core::Engine`] view with its own budget and cancellation
//! handle, which is cheap (the snapshot is borrowed, never copied).
//! `POST /mutate` commits INSERT/UPDATE/DELETE batches through the
//! write-ahead log; with `--data-dir` they survive crashes
//! (docs/DURABILITY.md).

pub mod admission;
pub mod client;
pub mod config;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod plan_cache;
pub mod server;

pub use config::{load_graph, parse_args, ServerConfig};
pub use server::{Server, Shared};
