//! The serving core: acceptor, bounded worker pool, client-disconnect
//! watchdog, and graceful drain-then-shutdown.
//!
//! Thread layout:
//! * **acceptor** — non-blocking accept loop; pushes connections into the
//!   bounded [`ConnQueue`] or sheds them inline with 503.
//! * **workers** (N) — pop connections and serve keep-alive request
//!   loops; all query execution happens here, one query per worker at a
//!   time, gated by [`QueryGate`].
//! * **watchdog** — polls in-flight requests' sockets with `MSG_PEEK`;
//!   a half-closed peer cancels its query via [`CancelHandle`] so an
//!   abandoned request stops consuming CPU at the next governor
//!   checkpoint.
//!
//! Shutdown ([`Server::begin_shutdown`], wired to SIGTERM / stdin EOF by
//! `main`): the acceptor stops admitting and closes the queue; workers
//! drain the backlog, finish in-flight requests (responses carry
//! `Connection: close`), and exit; `join` then reaps every thread.

use crate::admission::{ConnQueue, QueryGate};
use crate::config::ServerConfig;
use crate::handlers;
use crate::http::{self, RecvError, Response};
use crate::metrics::Metrics;
use crate::plan_cache::PlanCache;
use gsql_core::CancelHandle;
use pgraph::graph::Graph;
use pgraph::shard::{ShardSpec, ShardedGraph};
use pgraph::wal::LiveGraph;
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared by every server thread.
pub struct Shared {
    pub cfg: ServerConfig,
    /// The mutable graph. Each request pins a snapshot
    /// ([`LiveGraph::snapshot`]) and runs against that immutable view;
    /// `POST /mutate` commits write batches through the WAL.
    pub live: LiveGraph,
    pub metrics: Metrics,
    pub plans: PlanCache,
    pub gate: QueryGate,
    pub queue: ConnQueue,
    pub watchdog: Watchdog,
    pub shutdown: AtomicBool,
    /// Set on the first WAL write failure: mutations are refused with
    /// 503 while reads keep serving the last durable snapshot.
    pub read_only: AtomicBool,
    /// Cached sharded view for scatter-gather execution (`--shards N`).
    pub shards: ShardCache,
    conns: ConnRegistry,
}

/// Lazily (re)built [`ShardedGraph`] for the current live snapshot.
///
/// A sharded view is immutable and fingerprinted against the graph it
/// was built from; after a `/mutate` commit publishes a new snapshot
/// the cached view no longer [`ShardedGraph::matches`] it and is
/// rebuilt on the next query. Requests between commit and rebuild that
/// race the lock simply run unsharded — output is byte-identical
/// either way, so this is a performance cache, never a correctness
/// dependency.
#[derive(Default)]
pub struct ShardCache {
    cached: Mutex<Option<Arc<ShardedGraph>>>,
}

impl ShardCache {
    /// The sharded view of `snapshot`, rebuilding if the cache is
    /// empty or was built for an earlier snapshot. Returns `None` when
    /// `count <= 1` (sharding disabled).
    pub fn for_snapshot(
        &self,
        count: usize,
        snapshot: &Arc<Graph>,
        metrics: &Metrics,
    ) -> Option<Arc<ShardedGraph>> {
        if count <= 1 {
            return None;
        }
        let mut cached = self.cached.lock().unwrap();
        if let Some(sh) = cached.as_ref() {
            if sh.matches(snapshot) {
                return Some(sh.clone());
            }
        }
        let sh = Arc::new(ShardedGraph::from_arc(snapshot, ShardSpec::hash(count)));
        metrics.set_shard_topology(sh.shard_count(), sh.imbalance_ratio());
        *cached = Some(sh.clone());
        Some(sh)
    }
}

/// Live connections, so drain can unblock workers parked in idle
/// keep-alive reads: `shutdown_reads` half-closes every socket's read
/// side (blocked reads see EOF immediately) while leaving the write
/// side intact for in-flight responses.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<Vec<(u64, TcpStream)>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().unwrap().push((id, clone));
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().unwrap().retain(|(i, _)| *i != id);
    }

    fn shutdown_reads(&self) {
        for (_, s) in self.streams.lock().unwrap().iter() {
            let _ = s.shutdown(std::net::Shutdown::Read);
        }
    }
}

impl Shared {
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }
}

// ---- client-disconnect watchdog -----------------------------------------

struct WatchEntry {
    id: u64,
    stream: TcpStream,
    cancel: CancelHandle,
}

/// Registry of requests currently executing, polled for peer disconnect.
#[derive(Default)]
pub struct Watchdog {
    entries: Mutex<Vec<WatchEntry>>,
    next_id: AtomicU64,
}

/// RAII registration; dropping unregisters (taken before the response is
/// written, so the watchdog never touches a socket a worker is using).
pub struct WatchToken<'a> {
    watchdog: &'a Watchdog,
    id: u64,
}

impl Watchdog {
    /// Registers `stream`'s peer as the owner of a running query.
    /// Returns `None` (no disconnect detection, query still runs) if the
    /// fd cannot be duplicated.
    pub fn watch(&self, stream: &TcpStream, cancel: CancelHandle) -> Option<WatchToken<'_>> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().unwrap().push(WatchEntry { id, stream: clone, cancel });
        Some(WatchToken { watchdog: self, id })
    }

    /// One poll pass: cancel every query whose client is gone.
    fn scan(&self) {
        let entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if peer_disconnected(&e.stream) {
                e.cancel.cancel();
            }
        }
    }
}

impl Drop for WatchToken<'_> {
    fn drop(&mut self) {
        let mut entries = self.watchdog.entries.lock().unwrap();
        entries.retain(|e| e.id != self.id);
    }
}

/// `MSG_PEEK` probe on a (temporarily) non-blocking socket: EOF or a
/// hard error means the peer is gone; `WouldBlock` means it is idle and
/// waiting, which is the healthy in-flight state.
fn peer_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let verdict = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => e.kind() != io::ErrorKind::WouldBlock,
    };
    let _ = stream.set_nonblocking(false);
    verdict
}

// ---- the server ----------------------------------------------------------

/// A running `gsql-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    watchdog: JoinHandle<()>,
}

impl Server {
    /// Binds and starts all threads; returns once the listener is live.
    /// `live` is the (possibly durable) graph; tests pass
    /// [`LiveGraph::in_memory`].
    pub fn start(cfg: ServerConfig, live: LiveGraph) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            queue: ConnQueue::new(cfg.queue_depth),
            gate: QueryGate::new(cfg.max_concurrent_queries),
            plans: PlanCache::new(cfg.plan_cache_capacity, cfg.max_prepared),
            metrics: Metrics::default(),
            watchdog: Watchdog::default(),
            shutdown: AtomicBool::new(false),
            read_only: AtomicBool::new(false),
            shards: ShardCache::default(),
            conns: ConnRegistry::default(),
            live,
            cfg,
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gsql-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))?
        };
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gsql-worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = shared.queue.pop() {
                            serve_connection(&shared, conn);
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let watchdog = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gsql-watchdog".into())
                .spawn(move || {
                    // Outlives the workers slightly: stops only once
                    // shutdown is flagged (scan of an empty registry is
                    // free).
                    while !shared.shutting_down() {
                        shared.watchdog.scan();
                        std::thread::sleep(Duration::from_millis(20));
                    }
                })?
        };

        Ok(Server { shared, addr, acceptor, workers, watchdog })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Flags shutdown: stop accepting, half-close idle keep-alive reads
    /// so parked workers wake, drain the backlog, let workers exit.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.conns.shutdown_reads();
    }

    /// Waits for the drain to complete and reaps every thread.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.watchdog.join();
    }

    /// `begin_shutdown` + `join`.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

fn acceptor_loop(shared: &Shared, listener: TcpListener) {
    loop {
        if shared.shutting_down() {
            shared.queue.close();
            return;
        }
        match listener.accept() {
            Ok((conn, _peer)) => {
                if let Err(rejected) = shared.queue.push(conn) {
                    // Shed inline: the acceptor must never block on a
                    // slow consumer, and the peer deserves a real signal
                    // rather than a silent RST.
                    shared.metrics.rejected_queue.fetch_add(1, Ordering::Relaxed);
                    shed_connection(rejected);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Writes a one-shot 503 to a connection the queue refused.
fn shed_connection(mut conn: TcpStream) {
    let resp = Response::json(
        503,
        br#"{"ok":false,"error":{"kind":"overloaded","message":"connection queue full"}}"#
            .to_vec(),
    )
    .with_header("retry-after", "1")
    .closing();
    let _ = conn.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = http::write_response(&mut conn, &resp);
}

/// Serves one connection's keep-alive request loop.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let reg_id = shared.conns.register(&stream);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    serve_requests(shared, &mut reader, &mut writer);
    if let Some(id) = reg_id {
        shared.conns.deregister(id);
    }
}

fn serve_requests(shared: &Shared, reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) {
    loop {
        if shared.shutting_down() {
            // Serve anything already pipelined, but don't park waiting
            // for a client that may never speak again.
            let _ = writer.set_read_timeout(Some(Duration::from_millis(100)));
        }
        match http::read_request(reader, shared.cfg.max_body_bytes) {
            Ok(req) => {
                let draining = shared.shutting_down();
                let mut resp = handlers::handle(shared, &req, writer);
                if draining || req.wants_close() {
                    resp.close = true;
                }
                match http::write_response(writer, &resp) {
                    Ok(true) => continue,
                    _ => return,
                }
            }
            Err(RecvError::Eof) => return,
            Err(RecvError::BodyTooLarge(n)) => {
                shared.metrics.rejected_body.fetch_add(1, Ordering::Relaxed);
                let body = format!(
                    r#"{{"ok":false,"error":{{"kind":"body-too-large","message":"request body of {n} bytes exceeds the {} byte limit"}}}}"#,
                    shared.cfg.max_body_bytes
                );
                // The oversized body was never read, so the connection
                // cannot be reused.
                let _ = http::write_response(writer, &Response::json(413, body).closing());
                return;
            }
            Err(RecvError::Malformed(msg)) => {
                let mut body = String::from(r#"{"ok":false,"error":{"kind":"bad-request","message":"#);
                crate::json::write_escaped(&mut body, &msg);
                body.push_str("}}");
                let _ = http::write_response(writer, &Response::json(400, body).closing());
                return;
            }
            Err(RecvError::Io(_)) => {
                // Idle timeout or peer reset; close quietly.
                let _ = writer.flush();
                return;
            }
        }
    }
}
