//! Property-based tests for accumulators: the algebraic laws the paper's
//! determinism and tractability arguments rest on.
//!
//! * order-invariant accumulators produce the same value for any
//!   permutation of their inputs (Section 4.3),
//! * the multiplicity shortcut equals literal repetition (Theorem 7.1 /
//!   Appendix A),
//! * multiplicity-insensitive accumulators are idempotent under repeats.

use accum::types::{HeapField, SortDir};
use accum::{Accum, AccumType, UserAccumRegistry};
use pgraph::bigcount::BigCount;
use pgraph::value::{Value, ValueType};
use proptest::prelude::*;

fn reg() -> UserAccumRegistry {
    UserAccumRegistry::new()
}

fn order_invariant_types() -> Vec<AccumType> {
    vec![
        AccumType::Sum(ValueType::Int),
        AccumType::Sum(ValueType::Double),
        AccumType::Min,
        AccumType::Max,
        AccumType::Avg,
        AccumType::Or,
        AccumType::And,
        AccumType::Set,
        AccumType::Bag,
        AccumType::Heap {
            capacity: 4,
            fields: vec![HeapField { index: 0, dir: SortDir::Desc }],
        },
        AccumType::Map(Box::new(AccumType::Sum(ValueType::Int))),
    ]
}

fn input_for(ty: &AccumType, x: i64) -> Value {
    match ty {
        AccumType::Or | AccumType::And => Value::Bool(x % 2 == 0),
        AccumType::Map(_) => Value::Tuple(vec![Value::Int(x % 4), Value::Int(x)]),
        AccumType::Heap { .. } => Value::Tuple(vec![Value::Int(x), Value::Int(x % 3)]),
        _ => Value::Int(x),
    }
}

proptest! {
    /// Any permutation of inputs yields the same value for order-invariant
    /// accumulator types. (Sum<double> is invariant up to FP rounding;
    /// integer inputs keep it exact here.)
    #[test]
    fn order_invariance(xs in prop::collection::vec(-50i64..50, 0..24), swap_seed in 0usize..1000) {
        let r = reg();
        for ty in order_invariant_types() {
            let mut a = Accum::new(&ty, &r).unwrap();
            for &x in &xs {
                a.combine(input_for(&ty, x), &r).unwrap();
            }
            // A pseudo-random permutation via rotation + adjacent swaps.
            let mut ys = xs.clone();
            if !ys.is_empty() {
                let n = ys.len();
                ys.rotate_left(swap_seed % n);
                let k = swap_seed % n;
                ys.swap(k, (k + 1) % n);
            }
            let mut b = Accum::new(&ty, &r).unwrap();
            for &y in &ys {
                b.combine(input_for(&ty, y), &r).unwrap();
            }
            prop_assert_eq!(a.value(), b.value(), "type {} order-sensitive", ty);
        }
    }

    /// The multiplicity shortcut equals literal repetition for every
    /// accumulator type that supports it.
    #[test]
    fn multiplicity_shortcut_equals_repetition(x in -30i64..30, mu in 1u64..200) {
        let r = reg();
        let mut types = order_invariant_types();
        types.push(AccumType::List); // expands literally below the cap
        for ty in types {
            let input = input_for(&ty, x);
            let mut shortcut = Accum::new(&ty, &r).unwrap();
            shortcut
                .combine_with_multiplicity(input.clone(), &BigCount::from(mu), &r)
                .unwrap();
            let mut repeated = Accum::new(&ty, &r).unwrap();
            for _ in 0..mu {
                repeated.combine(input.clone(), &r).unwrap();
            }
            prop_assert_eq!(
                shortcut.value(),
                repeated.value(),
                "type {} multiplicity shortcut diverged (x={}, mu={})", ty, x, mu
            );
        }
    }

    /// Multiplicity-insensitive accumulators absorb arbitrarily huge
    /// multiplicities as a single combine.
    #[test]
    fn insensitive_absorb_huge(x in -30i64..30, bits in 64usize..500) {
        let r = reg();
        for ty in [AccumType::Min, AccumType::Max, AccumType::Set, AccumType::Or, AccumType::And] {
            let input = input_for(&ty, x);
            let mut big = Accum::new(&ty, &r).unwrap();
            big.combine_with_multiplicity(input.clone(), &BigCount::pow2(bits), &r).unwrap();
            let mut once = Accum::new(&ty, &r).unwrap();
            once.combine(input.clone(), &r).unwrap();
            prop_assert_eq!(big.value(), once.value(), "type {}", ty);
        }
    }

    /// Bag counts are exact under mixed unit and bulk insertion.
    #[test]
    fn bag_counts_exact(units in 0u64..50, bulk in 0u64..1_000_000) {
        let r = reg();
        let mut b = Accum::new(&AccumType::Bag, &r).unwrap();
        for _ in 0..units {
            b.combine(Value::Int(7), &r).unwrap();
        }
        b.combine_with_multiplicity(Value::Int(7), &BigCount::from(bulk), &r).unwrap();
        let total = units + bulk;
        let want = if total == 0 {
            Value::Map(vec![])
        } else {
            Value::Map(vec![(Value::Int(7), Value::Int(total as i64))])
        };
        prop_assert_eq!(b.value(), want);
    }

    /// Heap truncation: the heap holds the top-capacity elements of the
    /// input multiset, in sort order.
    #[test]
    fn heap_is_truncated_sort(xs in prop::collection::vec(-100i64..100, 0..40), cap in 1usize..8) {
        let r = reg();
        let ty = AccumType::Heap {
            capacity: cap,
            fields: vec![HeapField { index: 0, dir: SortDir::Desc }],
        };
        let mut h = Accum::new(&ty, &r).unwrap();
        for &x in &xs {
            h.combine(Value::Tuple(vec![Value::Int(x)]), &r).unwrap();
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.truncate(cap);
        let want = Value::List(
            sorted.into_iter().map(|x| Value::Tuple(vec![Value::Int(x)])).collect(),
        );
        prop_assert_eq!(h.value(), want);
    }

    /// Avg equals the arithmetic mean regardless of multiplicity mixing.
    #[test]
    fn avg_is_exact_mean(xs in prop::collection::vec(-100i64..100, 1..20), mu in 1u64..50) {
        let r = reg();
        let mut a = Accum::new(&AccumType::Avg, &r).unwrap();
        let mut sum = 0f64;
        let mut count = 0f64;
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.combine(Value::Int(x), &r).unwrap();
                sum += x as f64;
                count += 1.0;
            } else {
                a.combine_with_multiplicity(Value::Int(x), &BigCount::from(mu), &r).unwrap();
                sum += x as f64 * mu as f64;
                count += mu as f64;
            }
        }
        let got = a.value().as_f64().unwrap();
        prop_assert!((got - sum / count).abs() < 1e-9);
    }
}
