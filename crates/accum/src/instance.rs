//! Live accumulator instances: the combiner `⊕`, assignment, snapshots,
//! and the multiplicity shortcut of Theorem 7.1.

use crate::types::{AccumType, HeapField, SortDir};
use crate::user::{UserAccum, UserAccumRegistry};
use pgraph::bigcount::BigCount;
use pgraph::value::{Value, ValueType};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from accumulator operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AccumError {
    /// The combiner received an input of an incompatible type.
    TypeMismatch {
        /// Human-readable description of the expected input type.
        expected: &'static str,
        /// The offending input value.
        got: Value,
    },
    /// Reference to a user accumulator type that was never registered.
    UnknownUserAccum(String),
    /// An order-dependent / multiplicity-sensitive accumulator received a
    /// binding with a multiplicity too large to expand — the query is
    /// outside the tractable class (paper Section 7).
    MultiplicityOverflow {
        /// Name of the accumulator type that refused the binding.
        accum: String,
        /// The multiplicity that exceeded the expansion cap (rendered,
        /// since it may not fit in a machine word).
        multiplicity: String,
    },
    /// A tuple-structured input had the wrong number of fields.
    ArityMismatch {
        /// Arity the accumulator was declared with.
        expected: usize,
        /// Arity of the input actually received.
        got: usize,
    },
}

impl fmt::Display for AccumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccumError::TypeMismatch { expected, got } => {
                write!(f, "accumulator expected {expected} input, got `{got}`")
            }
            AccumError::UnknownUserAccum(n) => write!(f, "unregistered user accumulator `{n}`"),
            AccumError::MultiplicityOverflow { accum, multiplicity } => write!(
                f,
                "{accum} cannot absorb binding multiplicity {multiplicity}: \
                 query is outside the tractable class (use a multiplicity-\
                 insensitive or Sum/Avg/Bag accumulator, or an enumerative \
                 path semantics)"
            ),
            AccumError::ArityMismatch { expected, got } => {
                write!(f, "expected a {expected}-tuple input, got arity {got}")
            }
        }
    }
}

impl std::error::Error for AccumError {}

/// Expansion cap for multiplicity-sensitive accumulators: bindings with
/// `μ` up to this bound are expanded by literal repetition; beyond it the
/// operation errors instead of silently exploding.
const EXPANSION_CAP: u64 = 1 << 20;

/// A live accumulator instance.
#[derive(Debug, Clone)]
pub enum Accum {
    /// `SumAccum<int>`: integer addition.
    SumInt(i64),
    /// `SumAccum<float/double>`: floating-point addition.
    SumDouble(f64),
    /// `SumAccum<string>`: concatenation (order-dependent).
    SumStr(String),
    /// `MinAccum`: running minimum (`None` until the first input).
    Min(Option<Value>),
    /// `MaxAccum`: running maximum (`None` until the first input).
    Max(Option<Value>),
    /// `AvgAccum`: running mean, stored as a sum/count pair.
    Avg {
        /// Sum of all inputs so far.
        sum: f64,
        /// Number of inputs so far.
        count: u64,
    },
    /// `OrAccum`: boolean disjunction.
    Or(bool),
    /// `AndAccum`: boolean conjunction.
    And(bool),
    /// `SetAccum`: deduplicated elements, kept sorted.
    Set(Vec<Value>),
    /// `BagAccum`: element → occurrence count (counts are [`BigCount`]
    /// so path multiplicities absorb without expansion).
    Bag(BTreeMap<Value, BigCount>),
    /// `ListAccum`: ordered append (order-dependent).
    List(Vec<Value>),
    /// `ArrayAccum`: ordered append; fixed-size semantics not modeled.
    Array(Vec<Value>),
    /// `MapAccum`: key → nested accumulator.
    Map {
        /// The live nested accumulator per key.
        entries: BTreeMap<Value, Accum>,
        /// Declared type used to instantiate nested accumulators on
        /// first touch of a new key.
        value_type: Box<AccumType>,
    },
    /// `HeapAccum`: capacity-bounded top-k of tuples.
    Heap {
        /// Maximum number of retained tuples.
        capacity: usize,
        /// Lexicographic sort specification.
        fields: Vec<HeapField>,
        /// Retained tuples, kept sorted best-first.
        items: Vec<Value>,
    },
    /// `GroupByAccum`: SQL GROUP BY as an accumulator (paper Example 12).
    GroupBy {
        /// Number of leading key fields in each input tuple.
        key_arity: usize,
        /// Declared types of the nested per-group accumulators.
        nested: Vec<AccumType>,
        /// Key tuple → live nested accumulators for that group.
        groups: BTreeMap<Value, Vec<Accum>>,
    },
    /// A user-defined accumulator behind the [`UserAccum`] trait object.
    User(Box<dyn UserAccum>),
}

impl Accum {
    /// Instantiates a fresh accumulator of declared type `ty` with its
    /// neutral internal value.
    pub fn new(ty: &AccumType, registry: &UserAccumRegistry) -> Result<Accum, AccumError> {
        Ok(match ty {
            AccumType::Sum(ValueType::Str) => Accum::SumStr(String::new()),
            AccumType::Sum(ValueType::Int) => Accum::SumInt(0),
            AccumType::Sum(_) => Accum::SumDouble(0.0),
            AccumType::Min => Accum::Min(None),
            AccumType::Max => Accum::Max(None),
            AccumType::Avg => Accum::Avg { sum: 0.0, count: 0 },
            AccumType::Or => Accum::Or(false),
            AccumType::And => Accum::And(true),
            AccumType::Set => Accum::Set(Vec::new()),
            AccumType::Bag => Accum::Bag(BTreeMap::new()),
            AccumType::List => Accum::List(Vec::new()),
            AccumType::Array => Accum::Array(Vec::new()),
            AccumType::Map(v) => {
                Accum::Map { entries: BTreeMap::new(), value_type: v.clone() }
            }
            AccumType::Heap { capacity, fields } => Accum::Heap {
                capacity: *capacity,
                fields: fields.clone(),
                items: Vec::new(),
            },
            AccumType::GroupBy { key_arity, nested } => Accum::GroupBy {
                key_arity: *key_arity,
                nested: nested.clone(),
                groups: BTreeMap::new(),
            },
            AccumType::User(name) => Accum::User(
                registry
                    .instantiate(name)
                    .ok_or_else(|| AccumError::UnknownUserAccum(name.clone()))?,
            ),
        })
    }

    /// Estimated heap footprint in bytes (inline + owned allocations),
    /// used by the query engine's accumulator memory budget. Collection
    /// accumulators recurse into their contents via
    /// [`pgraph::value::MemSize`].
    pub fn estimated_bytes(&self) -> usize {
        use pgraph::value::MemSize;
        let inline = std::mem::size_of::<Accum>();
        inline
            + match self {
                Accum::SumInt(_)
                | Accum::SumDouble(_)
                | Accum::Avg { .. }
                | Accum::Or(_)
                | Accum::And(_) => 0,
                Accum::SumStr(s) => s.capacity(),
                Accum::Min(v) | Accum::Max(v) => {
                    v.as_ref().map_or(0, MemSize::estimated_bytes)
                }
                Accum::Set(xs) | Accum::List(xs) | Accum::Array(xs) => {
                    xs.iter().map(MemSize::estimated_bytes).sum()
                }
                Accum::Bag(entries) => entries
                    .keys()
                    .map(|k| k.estimated_bytes() + std::mem::size_of::<BigCount>())
                    .sum(),
                Accum::Map { entries, .. } => entries
                    .iter()
                    .map(|(k, v)| k.estimated_bytes() + v.estimated_bytes())
                    .sum(),
                Accum::Heap { items, .. } => {
                    items.iter().map(MemSize::estimated_bytes).sum()
                }
                Accum::GroupBy { groups, .. } => groups
                    .iter()
                    .map(|(k, accs)| {
                        k.estimated_bytes()
                            + accs.iter().map(Accum::estimated_bytes).sum::<usize>()
                    })
                    .sum(),
                Accum::User(u) => u.estimated_bytes(),
            }
    }

    /// The combiner `⊕` — folds one input into the internal value.
    pub fn combine(&mut self, input: Value, registry: &UserAccumRegistry) -> Result<(), AccumError> {
        match self {
            Accum::SumInt(v) => {
                let x = input.as_i64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "integer",
                    got: input.clone(),
                })?;
                *v = v.wrapping_add(x);
            }
            Accum::SumDouble(v) => {
                let x = input.as_f64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "numeric",
                    got: input.clone(),
                })?;
                *v += x;
            }
            Accum::SumStr(v) => match input {
                Value::Str(s) => v.push_str(&s),
                other => {
                    return Err(AccumError::TypeMismatch { expected: "string", got: other })
                }
            },
            Accum::Min(slot) => {
                if slot.as_ref().is_none_or(|cur| input < *cur) {
                    *slot = Some(input);
                }
            }
            Accum::Max(slot) => {
                if slot.as_ref().is_none_or(|cur| input > *cur) {
                    *slot = Some(input);
                }
            }
            Accum::Avg { sum, count } => {
                let x = input.as_f64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "numeric",
                    got: input.clone(),
                })?;
                *sum += x;
                *count += 1;
            }
            Accum::Or(v) => {
                let b = input.as_bool().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "boolean",
                    got: input.clone(),
                })?;
                *v |= b;
            }
            Accum::And(v) => {
                let b = input.as_bool().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "boolean",
                    got: input.clone(),
                })?;
                *v &= b;
            }
            Accum::Set(items) => {
                if let Err(pos) = items.binary_search(&input) {
                    items.insert(pos, input);
                }
            }
            Accum::Bag(counts) => {
                counts.entry(input).or_insert_with(BigCount::zero).add_u64(1);
            }
            Accum::List(items) | Accum::Array(items) => items.push(input),
            Accum::Map { entries, value_type } => {
                let (k, v) = split_map_input(input)?;
                let nested = match entries.entry(k) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(Accum::new(value_type, registry)?)
                    }
                };
                nested.combine(v, registry)?;
            }
            Accum::Heap { capacity, fields, items } => {
                heap_insert(items, input, fields, *capacity);
            }
            Accum::GroupBy { key_arity, nested, groups } => {
                let (key, vals) = split_groupby_input(input, *key_arity, nested.len())?;
                let slot = match groups.entry(key) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        let mut fresh = Vec::with_capacity(nested.len());
                        for ty in nested.iter() {
                            fresh.push(Accum::new(ty, registry)?);
                        }
                        e.insert(fresh)
                    }
                };
                for (a, v) in slot.iter_mut().zip(vals) {
                    a.combine(v, registry)?;
                }
            }
            Accum::User(u) => u.combine(input)?,
        }
        Ok(())
    }

    /// Combines an input carried by a binding row of multiplicity `mult`
    /// — the Theorem 7.1 shortcut that replaces `μ` identical
    /// ACCUM-clause executions with one:
    ///
    /// * multiplicity-insensitive accumulators combine once,
    /// * `SumAccum<numeric>` receives `μ·i`, `AvgAccum` receives
    ///   `(μ·i, +μ)`, `BagAccum` bumps the element count by `μ`,
    /// * `Map`/`GroupBy` recurse into their nested accumulators,
    /// * order-dependent accumulators fall back to literal expansion up
    ///   to `EXPANSION_CAP` (2^20), erroring beyond (outside the
    ///   tractable class).
    pub fn combine_with_multiplicity(
        &mut self,
        input: Value,
        mult: &BigCount,
        registry: &UserAccumRegistry,
    ) -> Result<(), AccumError> {
        if mult.is_zero() {
            return Ok(());
        }
        if mult.is_one() {
            return self.combine(input, registry);
        }
        match self {
            // Multiplicity-insensitive: once is enough.
            Accum::Min(_) | Accum::Max(_) | Accum::Or(_) | Accum::And(_) | Accum::Set(_) => {
                self.combine(input, registry)
            }
            // A heap keeps at most `capacity` copies: inserting
            // min(μ, capacity) copies is exactly μ-fold insertion.
            Accum::Heap { capacity, .. } => {
                let copies = BigCount::from(*capacity as u64).min(mult.clone());
                let copies = copies.to_u64().unwrap_or(*capacity as u64);
                for _ in 0..copies {
                    self.combine(input.clone(), registry)?;
                }
                Ok(())
            }
            Accum::SumInt(v) => {
                let x = input.as_i64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "integer",
                    got: input.clone(),
                })?;
                let m = mult.to_i64().ok_or_else(|| AccumError::MultiplicityOverflow {
                    accum: "SumAccum<INT>".into(),
                    multiplicity: mult.to_string(),
                })?;
                *v = v.wrapping_add(x.wrapping_mul(m));
                Ok(())
            }
            Accum::SumDouble(v) => {
                let x = input.as_f64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "numeric",
                    got: input.clone(),
                })?;
                *v += x * mult.to_f64();
                Ok(())
            }
            Accum::Avg { sum, count } => {
                let x = input.as_f64().ok_or_else(|| AccumError::TypeMismatch {
                    expected: "numeric",
                    got: input.clone(),
                })?;
                let m = mult.to_u64().ok_or_else(|| AccumError::MultiplicityOverflow {
                    accum: "AvgAccum".into(),
                    multiplicity: mult.to_string(),
                })?;
                *sum += x * m as f64;
                *count += m;
                Ok(())
            }
            Accum::Bag(counts) => {
                counts
                    .entry(input)
                    .or_insert_with(BigCount::zero)
                    .add_assign(mult);
                Ok(())
            }
            Accum::Map { entries, value_type } => {
                let (k, v) = split_map_input(input)?;
                let nested = match entries.entry(k) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(Accum::new(value_type, registry)?)
                    }
                };
                nested.combine_with_multiplicity(v, mult, registry)
            }
            Accum::GroupBy { key_arity, nested, groups } => {
                let (key, vals) = split_groupby_input(input, *key_arity, nested.len())?;
                let slot = match groups.entry(key) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        let mut fresh = Vec::with_capacity(nested.len());
                        for ty in nested.iter() {
                            fresh.push(Accum::new(ty, registry)?);
                        }
                        e.insert(fresh)
                    }
                };
                for (a, v) in slot.iter_mut().zip(vals) {
                    a.combine_with_multiplicity(v, mult, registry)?;
                }
                Ok(())
            }
            // Order-dependent: expand literally while tolerable.
            Accum::SumStr(_) | Accum::List(_) | Accum::Array(_) | Accum::User(_) => {
                let name = self.kind_name();
                match mult.to_u64() {
                    Some(m) if m <= EXPANSION_CAP => {
                        for _ in 0..m {
                            self.combine(input.clone(), registry)?;
                        }
                        Ok(())
                    }
                    _ => Err(AccumError::MultiplicityOverflow {
                        accum: name.into(),
                        multiplicity: mult.to_string(),
                    }),
                }
            }
        }
    }

    /// Merges another instance of the same accumulator kind into `self` —
    /// the Reduce step of partitioned (scatter-gather) accumulation.
    /// `other` must have been built from [`Accum::new`] (the neutral
    /// value, *not* a declaration-initialized prototype) and fed a subset
    /// of the inputs; merging all partitions into the sequential store
    /// then reproduces the sequential fold.
    ///
    /// For types where [`AccumType::is_exact_merge`] holds the merged
    /// state is **bit-identical** to the sequential fold regardless of
    /// how inputs were partitioned. The remaining types merge with their
    /// natural semantics (float addition, list concatenation, heap
    /// re-insertion) but may differ from the sequential fold in rounding
    /// or tie order — callers gate on `is_exact_merge` when byte
    /// determinism matters.
    ///
    /// Errors with [`AccumError::TypeMismatch`] on a kind mismatch and
    /// refuses to merge opaque [`Accum::User`] instances.
    #[allow(clippy::only_used_in_recursion)] // registry threads through to nested Map/GroupBy cells
    pub fn merge(&mut self, other: Accum, registry: &UserAccumRegistry) -> Result<(), AccumError> {
        match (self, other) {
            (Accum::SumInt(a), Accum::SumInt(b)) => *a = a.wrapping_add(b),
            (Accum::SumDouble(a), Accum::SumDouble(b)) => *a += b,
            (Accum::SumStr(a), Accum::SumStr(b)) => a.push_str(&b),
            (Accum::Min(a), Accum::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|cur| v < *cur) {
                        *a = Some(v);
                    }
                }
            }
            (Accum::Max(a), Accum::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|cur| v > *cur) {
                        *a = Some(v);
                    }
                }
            }
            (Accum::Avg { sum, count }, Accum::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (Accum::Or(a), Accum::Or(b)) => *a |= b,
            (Accum::And(a), Accum::And(b)) => *a &= b,
            (Accum::Set(items), Accum::Set(other)) => {
                for v in other {
                    if let Err(pos) = items.binary_search(&v) {
                        items.insert(pos, v);
                    }
                }
            }
            (Accum::Bag(counts), Accum::Bag(other)) => {
                for (k, c) in other {
                    counts.entry(k).or_insert_with(BigCount::zero).add_assign(&c);
                }
            }
            (Accum::List(items), Accum::List(other))
            | (Accum::Array(items), Accum::Array(other)) => items.extend(other),
            (
                Accum::Map { entries, .. },
                Accum::Map { entries: other, .. },
            ) => {
                for (k, nested) in other {
                    match entries.entry(k) {
                        std::collections::btree_map::Entry::Occupied(e) => {
                            e.into_mut().merge(nested, registry)?;
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            // Partition-local state moves in wholesale —
                            // it already equals neutral ⊕ its inputs.
                            e.insert(nested);
                        }
                    }
                }
            }
            (
                Accum::Heap { capacity, fields, items },
                Accum::Heap { items: other, .. },
            ) => {
                for v in other {
                    heap_insert(items, v, fields, *capacity);
                }
            }
            (
                Accum::GroupBy { groups, .. },
                Accum::GroupBy { groups: other, .. },
            ) => {
                for (k, accs) in other {
                    match groups.entry(k) {
                        std::collections::btree_map::Entry::Occupied(e) => {
                            for (a, b) in e.into_mut().iter_mut().zip(accs) {
                                a.merge(b, registry)?;
                            }
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(accs);
                        }
                    }
                }
            }
            (me, other) => {
                return Err(AccumError::TypeMismatch {
                    expected: me.kind_name(),
                    got: other.value(),
                });
            }
        }
        Ok(())
    }

    /// The `=` operator: overwrite the internal value.
    pub fn assign(&mut self, value: Value) -> Result<(), AccumError> {
        match self {
            Accum::SumInt(v) => {
                *v = value.as_i64().ok_or(AccumError::TypeMismatch {
                    expected: "integer",
                    got: value.clone(),
                })?
            }
            Accum::SumDouble(v) => {
                *v = value.as_f64().ok_or(AccumError::TypeMismatch {
                    expected: "numeric",
                    got: value.clone(),
                })?
            }
            Accum::SumStr(v) => match value {
                Value::Str(s) => *v = s,
                other => return Err(AccumError::TypeMismatch { expected: "string", got: other }),
            },
            Accum::Min(slot) | Accum::Max(slot) => *slot = Some(value),
            Accum::Avg { sum, count } => {
                *sum = value.as_f64().ok_or(AccumError::TypeMismatch {
                    expected: "numeric",
                    got: value.clone(),
                })?;
                *count = 1;
            }
            Accum::Or(v) | Accum::And(v) => {
                *v = value.as_bool().ok_or(AccumError::TypeMismatch {
                    expected: "boolean",
                    got: value.clone(),
                })?
            }
            Accum::Set(items) => match value {
                Value::Set(xs) | Value::List(xs) => {
                    let mut xs = xs;
                    xs.sort();
                    xs.dedup();
                    *items = xs;
                }
                other => {
                    *items = vec![other];
                }
            },
            Accum::Bag(counts) => {
                counts.clear();
                match value {
                    Value::Set(xs) | Value::List(xs) => {
                        for x in xs {
                            counts.entry(x).or_insert_with(BigCount::zero).add_u64(1);
                        }
                    }
                    other => {
                        counts.insert(other, BigCount::one());
                    }
                }
            }
            Accum::List(items) | Accum::Array(items) => match value {
                Value::List(xs) | Value::Set(xs) => *items = xs,
                other => *items = vec![other],
            },
            Accum::Map { entries, .. } => {
                entries.clear();
                if !matches!(value, Value::Null) {
                    return Err(AccumError::TypeMismatch {
                        expected: "null (maps can only be cleared)",
                        got: value,
                    });
                }
            }
            Accum::Heap { items, .. } => {
                items.clear();
                if !matches!(value, Value::Null) {
                    return Err(AccumError::TypeMismatch {
                        expected: "null (heaps can only be cleared)",
                        got: value,
                    });
                }
            }
            Accum::GroupBy { groups, .. } => {
                groups.clear();
                if !matches!(value, Value::Null) {
                    return Err(AccumError::TypeMismatch {
                        expected: "null (group-by accumulators can only be cleared)",
                        got: value,
                    });
                }
            }
            Accum::User(u) => u.assign(value)?,
        }
        Ok(())
    }

    /// Snapshot of the internal value.
    pub fn value(&self) -> Value {
        match self {
            Accum::SumInt(v) => Value::Int(*v),
            Accum::SumDouble(v) => Value::Double(*v),
            Accum::SumStr(v) => Value::Str(v.clone()),
            Accum::Min(slot) | Accum::Max(slot) => slot.clone().unwrap_or(Value::Null),
            Accum::Avg { sum, count } => {
                if *count == 0 {
                    Value::Double(0.0)
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            Accum::Or(v) | Accum::And(v) => Value::Bool(*v),
            Accum::Set(items) => Value::Set(items.clone()),
            Accum::Bag(counts) => {
                // A bag surfaces as a map element -> count.
                Value::Map(
                    counts
                        .iter()
                        .map(|(k, c)| {
                            let cv = c
                                .to_i64()
                                .map(Value::Int)
                                .unwrap_or_else(|| Value::Str(c.to_string()));
                            (k.clone(), cv)
                        })
                        .collect(),
                )
            }
            Accum::List(items) | Accum::Array(items) => Value::List(items.clone()),
            Accum::Map { entries, .. } => Value::Map(
                entries
                    .iter()
                    .map(|(k, a)| (k.clone(), a.value()))
                    .collect(),
            ),
            Accum::Heap { items, .. } => Value::List(items.clone()),
            Accum::GroupBy { groups, .. } => Value::Map(
                groups
                    .iter()
                    .map(|(k, accs)| {
                        (k.clone(), Value::Tuple(accs.iter().map(Accum::value).collect()))
                    })
                    .collect(),
            ),
            Accum::User(u) => u.value(),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Accum::SumInt(_) => "SumAccum<INT>",
            Accum::SumDouble(_) => "SumAccum<DOUBLE>",
            Accum::SumStr(_) => "SumAccum<STRING>",
            Accum::Min(_) => "MinAccum",
            Accum::Max(_) => "MaxAccum",
            Accum::Avg { .. } => "AvgAccum",
            Accum::Or(_) => "OrAccum",
            Accum::And(_) => "AndAccum",
            Accum::Set(_) => "SetAccum",
            Accum::Bag(_) => "BagAccum",
            Accum::List(_) => "ListAccum",
            Accum::Array(_) => "ArrayAccum",
            Accum::Map { .. } => "MapAccum",
            Accum::Heap { .. } => "HeapAccum",
            Accum::GroupBy { .. } => "GroupByAccum",
            Accum::User(_) => "UserAccum",
        }
    }
}

/// Splits a `MapAccum` input `(k -> v)`, encoded as a 2-tuple.
fn split_map_input(input: Value) -> Result<(Value, Value), AccumError> {
    match input {
        Value::Tuple(mut xs) if xs.len() == 2 => {
            let v = xs.pop().unwrap();
            let k = xs.pop().unwrap();
            Ok((k, v))
        }
        other => Err(AccumError::TypeMismatch { expected: "(key -> value) pair", got: other }),
    }
}

/// Splits a `GroupByAccum` input `(k1..kn -> a1..am)`, encoded as an
/// `(n+m)`-tuple.
fn split_groupby_input(
    input: Value,
    key_arity: usize,
    value_arity: usize,
) -> Result<(Value, Vec<Value>), AccumError> {
    match input {
        Value::Tuple(xs) if xs.len() == key_arity + value_arity => {
            let mut xs = xs;
            let vals = xs.split_off(key_arity);
            Ok((Value::Tuple(xs), vals))
        }
        Value::Tuple(xs) => Err(AccumError::ArityMismatch {
            expected: key_arity + value_arity,
            got: xs.len(),
        }),
        other => Err(AccumError::TypeMismatch { expected: "group-by tuple", got: other }),
    }
}

/// Compares heap tuples under the lexicographic sort spec. Non-tuple
/// items compare directly by the first field direction.
fn heap_cmp(a: &Value, b: &Value, fields: &[HeapField]) -> Ordering {
    if fields.is_empty() {
        return a.cmp(b);
    }
    let (ta, tb) = match (a, b) {
        (Value::Tuple(x), Value::Tuple(y)) => (x.as_slice(), y.as_slice()),
        _ => {
            let o = a.cmp(b);
            return if fields[0].dir == SortDir::Desc { o.reverse() } else { o };
        }
    };
    for f in fields {
        let xa = ta.get(f.index).unwrap_or(&Value::Null);
        let xb = tb.get(f.index).unwrap_or(&Value::Null);
        let o = xa.cmp(xb);
        if o != Ordering::Equal {
            return if f.dir == SortDir::Desc { o.reverse() } else { o };
        }
    }
    Ordering::Equal
}

fn heap_insert(items: &mut Vec<Value>, input: Value, fields: &[HeapField], capacity: usize) {
    let pos = items
        .binary_search_by(|probe| heap_cmp(probe, &input, fields))
        .unwrap_or_else(|p| p);
    items.insert(pos, input);
    items.truncate(capacity);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> UserAccumRegistry {
        let mut r = UserAccumRegistry::new();
        r.register("ProductAccum", || {
            Box::<crate::user::ProductAccum>::default()
        });
        r
    }

    fn mk(ty: &AccumType) -> Accum {
        Accum::new(ty, &reg()).unwrap()
    }

    #[test]
    fn sum_int_and_double() {
        let r = reg();
        let mut a = mk(&AccumType::Sum(ValueType::Int));
        a.combine(Value::Int(2), &r).unwrap();
        a.combine(Value::Int(40), &r).unwrap();
        assert_eq!(a.value(), Value::Int(42));
        let mut d = mk(&AccumType::Sum(ValueType::Double));
        d.combine(Value::Double(1.5), &r).unwrap();
        d.combine(Value::Int(1), &r).unwrap();
        assert_eq!(d.value(), Value::Double(2.5));
    }

    #[test]
    fn min_max_mixed_numerics_compare_exactly() {
        // Regression: with the lossy `i64 as f64` ordering, 2^53 + 1
        // compared Equal to Double(2^53), so Max kept the wrong witness.
        let r = reg();
        let p53 = 1i64 << 53;
        let mut hi = mk(&AccumType::Max);
        hi.combine(Value::Double(p53 as f64), &r).unwrap();
        hi.combine(Value::Int(p53 + 1), &r).unwrap();
        assert_eq!(hi.value(), Value::Int(p53 + 1));
        let mut lo = mk(&AccumType::Min);
        lo.combine(Value::Double(-(p53 as f64)), &r).unwrap();
        lo.combine(Value::Int(-(p53 + 1)), &r).unwrap();
        assert_eq!(lo.value(), Value::Int(-(p53 + 1)));
        // Ordinary mixed magnitudes still interleave.
        let mut m = mk(&AccumType::Min);
        for v in [Value::Int(3), Value::Double(2.5), Value::Int(2), Value::Double(2.25)] {
            m.combine(v, &r).unwrap();
        }
        assert_eq!(m.value(), Value::Int(2));
    }

    #[test]
    fn min_max_track_extremes() {
        let r = reg();
        let mut lo = mk(&AccumType::Min);
        let mut hi = mk(&AccumType::Max);
        for v in [3, 1, 4, 1, 5] {
            lo.combine(Value::Int(v), &r).unwrap();
            hi.combine(Value::Int(v), &r).unwrap();
        }
        assert_eq!(lo.value(), Value::Int(1));
        assert_eq!(hi.value(), Value::Int(5));
        assert_eq!(mk(&AccumType::Min).value(), Value::Null);
    }

    #[test]
    fn avg_is_order_invariant_pairwise() {
        let r = reg();
        let mut a = mk(&AccumType::Avg);
        let mut b = mk(&AccumType::Avg);
        for v in [1.0, 2.0, 6.0] {
            a.combine(Value::Double(v), &r).unwrap();
        }
        for v in [6.0, 1.0, 2.0] {
            b.combine(Value::Double(v), &r).unwrap();
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.value(), Value::Double(3.0));
        assert_eq!(mk(&AccumType::Avg).value(), Value::Double(0.0));
    }

    #[test]
    fn bool_accums() {
        let r = reg();
        let mut o = mk(&AccumType::Or);
        o.combine(Value::Bool(false), &r).unwrap();
        assert_eq!(o.value(), Value::Bool(false));
        o.combine(Value::Bool(true), &r).unwrap();
        assert_eq!(o.value(), Value::Bool(true));
        let mut a = mk(&AccumType::And);
        a.combine(Value::Bool(true), &r).unwrap();
        assert_eq!(a.value(), Value::Bool(true));
        a.combine(Value::Bool(false), &r).unwrap();
        assert_eq!(a.value(), Value::Bool(false));
    }

    #[test]
    fn set_deduplicates_bag_counts() {
        let r = reg();
        let mut s = mk(&AccumType::Set);
        let mut b = mk(&AccumType::Bag);
        for v in [1, 2, 2, 3, 2] {
            s.combine(Value::Int(v), &r).unwrap();
            b.combine(Value::Int(v), &r).unwrap();
        }
        assert_eq!(
            s.value(),
            Value::Set(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            b.value(),
            Value::Map(vec![
                (Value::Int(1), Value::Int(1)),
                (Value::Int(2), Value::Int(3)),
                (Value::Int(3), Value::Int(1)),
            ])
        );
    }

    #[test]
    fn map_accum_nests() {
        let r = reg();
        let ty = AccumType::Map(Box::new(AccumType::Sum(ValueType::Int)));
        let mut m = mk(&ty);
        let pair = |k: &str, v: i64| Value::Tuple(vec![Value::from(k), Value::Int(v)]);
        m.combine(pair("a", 1), &r).unwrap();
        m.combine(pair("b", 10), &r).unwrap();
        m.combine(pair("a", 2), &r).unwrap();
        assert_eq!(
            m.value(),
            Value::Map(vec![
                (Value::from("a"), Value::Int(3)),
                (Value::from("b"), Value::Int(10)),
            ])
        );
    }

    #[test]
    fn heap_keeps_top_k() {
        let r = reg();
        let ty = AccumType::Heap {
            capacity: 2,
            fields: vec![
                HeapField { index: 0, dir: SortDir::Desc },
                HeapField { index: 1, dir: SortDir::Asc },
            ],
        };
        let mut h = mk(&ty);
        let t = |score: i64, name: &str| Value::Tuple(vec![Value::Int(score), Value::from(name)]);
        for (s, n) in [(5, "e"), (9, "b"), (9, "a"), (1, "x"), (7, "c")] {
            h.combine(t(s, n), &r).unwrap();
        }
        // Top two by score DESC, name ASC tiebreak.
        assert_eq!(h.value(), Value::List(vec![t(9, "a"), t(9, "b")]));
    }

    #[test]
    fn groupby_accumulates_per_key() {
        let r = reg();
        let ty = AccumType::GroupBy {
            key_arity: 1,
            nested: vec![AccumType::Sum(ValueType::Int), AccumType::Max],
        };
        let mut g = mk(&ty);
        let row = |k: &str, a: i64, b: i64| {
            Value::Tuple(vec![Value::from(k), Value::Int(a), Value::Int(b)])
        };
        g.combine(row("x", 1, 5), &r).unwrap();
        g.combine(row("x", 2, 3), &r).unwrap();
        g.combine(row("y", 7, 1), &r).unwrap();
        assert_eq!(
            g.value(),
            Value::Map(vec![
                (
                    Value::Tuple(vec![Value::from("x")]),
                    Value::Tuple(vec![Value::Int(3), Value::Int(5)])
                ),
                (
                    Value::Tuple(vec![Value::from("y")]),
                    Value::Tuple(vec![Value::Int(7), Value::Int(1)])
                ),
            ])
        );
    }

    #[test]
    fn groupby_arity_checked() {
        let r = reg();
        let ty = AccumType::GroupBy { key_arity: 1, nested: vec![AccumType::Min] };
        let mut g = mk(&ty);
        let bad = Value::Tuple(vec![Value::Int(1)]);
        assert!(matches!(
            g.combine(bad, &r),
            Err(AccumError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn multiplicity_shortcut_sum_and_avg() {
        let r = reg();
        let mu = BigCount::from(1000u64);
        let mut s = mk(&AccumType::Sum(ValueType::Int));
        s.combine_with_multiplicity(Value::Int(3), &mu, &r).unwrap();
        assert_eq!(s.value(), Value::Int(3000));
        let mut a = mk(&AccumType::Avg);
        a.combine_with_multiplicity(Value::Double(2.0), &mu, &r).unwrap();
        a.combine(Value::Double(4.0), &r).unwrap();
        // (1000*2 + 4) / 1001
        assert_eq!(a.value(), Value::Double(2004.0 / 1001.0));
    }

    #[test]
    fn multiplicity_insensitive_once() {
        let r = reg();
        let mu = BigCount::pow2(100); // astronomically many paths
        let mut m = mk(&AccumType::Max);
        m.combine_with_multiplicity(Value::Int(7), &mu, &r).unwrap();
        assert_eq!(m.value(), Value::Int(7));
        let mut s = mk(&AccumType::Set);
        s.combine_with_multiplicity(Value::Int(7), &mu, &r).unwrap();
        assert_eq!(s.value(), Value::Set(vec![Value::Int(7)]));
    }

    #[test]
    fn multiplicity_bag_stays_compressed() {
        let r = reg();
        let mu = BigCount::pow2(100);
        let mut b = mk(&AccumType::Bag);
        b.combine_with_multiplicity(Value::Int(1), &mu, &r).unwrap();
        // Count exceeds i64 so it surfaces as a decimal string.
        assert_eq!(
            b.value(),
            Value::Map(vec![(Value::Int(1), Value::Str(BigCount::pow2(100).to_string()))])
        );
    }

    #[test]
    fn multiplicity_overflow_on_list() {
        let r = reg();
        let mu = BigCount::pow2(64);
        let mut l = mk(&AccumType::List);
        assert!(matches!(
            l.combine_with_multiplicity(Value::Int(1), &mu, &r),
            Err(AccumError::MultiplicityOverflow { .. })
        ));
        // Small multiplicities expand literally.
        let mut l2 = mk(&AccumType::List);
        l2.combine_with_multiplicity(Value::Int(1), &BigCount::from(3u64), &r)
            .unwrap();
        assert_eq!(
            l2.value(),
            Value::List(vec![Value::Int(1), Value::Int(1), Value::Int(1)])
        );
    }

    #[test]
    fn multiplicity_recurses_into_map() {
        let r = reg();
        let ty = AccumType::Map(Box::new(AccumType::Sum(ValueType::Double)));
        let mut m = mk(&ty);
        let pair = Value::Tuple(vec![Value::from("k"), Value::Double(1.5)]);
        m.combine_with_multiplicity(pair, &BigCount::from(4u64), &r)
            .unwrap();
        assert_eq!(m.value(), Value::Map(vec![(Value::from("k"), Value::Double(6.0))]));
    }

    #[test]
    fn assign_overwrites() {
        let r = reg();
        let mut s = mk(&AccumType::Sum(ValueType::Double));
        s.combine(Value::Double(5.0), &r).unwrap();
        s.assign(Value::Double(1.0)).unwrap();
        assert_eq!(s.value(), Value::Double(1.0));
        let mut m = mk(&AccumType::Max);
        m.combine(Value::Int(10), &r).unwrap();
        m.assign(Value::Int(0)).unwrap();
        assert_eq!(m.value(), Value::Int(0));
        m.combine(Value::Int(3), &r).unwrap();
        assert_eq!(m.value(), Value::Int(3));
    }

    #[test]
    fn user_accum_via_registry() {
        let r = reg();
        let mut p = Accum::new(&AccumType::User("ProductAccum".into()), &r).unwrap();
        p.combine(Value::Int(6), &r).unwrap();
        p.combine(Value::Int(7), &r).unwrap();
        assert_eq!(p.value(), Value::Double(42.0));
        assert!(matches!(
            Accum::new(&AccumType::User("Missing".into()), &r),
            Err(AccumError::UnknownUserAccum(_))
        ));
    }

    #[test]
    fn sum_string_concatenates() {
        let r = reg();
        let mut s = mk(&AccumType::Sum(ValueType::Str));
        s.combine(Value::from("ab"), &r).unwrap();
        s.combine(Value::from("cd"), &r).unwrap();
        assert_eq!(s.value(), Value::from("abcd"));
    }

    /// Feeds `inputs` sequentially, then again split into `parts`
    /// identity-seeded partials merged in order, and asserts the exact
    /// types produce identical snapshots both ways.
    fn check_partition_invariance(ty: &AccumType, inputs: &[Value], parts: usize) {
        let r = reg();
        let mut seq = mk(ty);
        for v in inputs {
            seq.combine(v.clone(), &r).unwrap();
        }
        let mut merged = mk(ty);
        for chunk in inputs.chunks(inputs.len().div_ceil(parts).max(1)) {
            let mut partial = mk(ty);
            for v in chunk {
                partial.combine(v.clone(), &r).unwrap();
            }
            merged.merge(partial, &r).unwrap();
        }
        assert_eq!(seq.value(), merged.value(), "{ty} over {parts} partitions");
    }

    #[test]
    fn merge_reproduces_sequential_fold_for_exact_types() {
        let ints: Vec<Value> = [7i64, -3, 3, 9, 7, 0, 12, -3].map(Value::Int).into();
        let bools: Vec<Value> =
            [true, false, true, false].map(Value::Bool).into();
        let pairs: Vec<Value> = (0..8)
            .map(|i| Value::Tuple(vec![Value::Int(i % 3), Value::Int(i)]))
            .collect();
        for parts in [1, 2, 3, 4] {
            check_partition_invariance(&AccumType::Sum(ValueType::Int), &ints, parts);
            check_partition_invariance(&AccumType::Min, &ints, parts);
            check_partition_invariance(&AccumType::Max, &ints, parts);
            check_partition_invariance(&AccumType::Or, &bools, parts);
            check_partition_invariance(&AccumType::And, &bools, parts);
            check_partition_invariance(&AccumType::Set, &ints, parts);
            check_partition_invariance(&AccumType::Bag, &ints, parts);
            check_partition_invariance(
                &AccumType::Map(Box::new(AccumType::Sum(ValueType::Int))),
                &pairs,
                parts,
            );
            check_partition_invariance(
                &AccumType::GroupBy {
                    key_arity: 1,
                    nested: vec![AccumType::Sum(ValueType::Int), AccumType::Max],
                },
                &(0..8)
                    .map(|i| {
                        Value::Tuple(vec![
                            Value::Int(i % 2),
                            Value::Int(i * 3),
                            Value::Int(10 - i),
                        ])
                    })
                    .collect::<Vec<_>>(),
                parts,
            );
        }
    }

    #[test]
    fn merge_identity_is_neutral() {
        let r = reg();
        // And's identity is `true`, Or's is `false` — merging a fresh
        // instance must never flip an established result.
        let mut and = mk(&AccumType::And);
        and.combine(Value::Bool(false), &r).unwrap();
        and.merge(mk(&AccumType::And), &r).unwrap();
        assert_eq!(and.value(), Value::Bool(false));
        let mut or = mk(&AccumType::Or);
        or.combine(Value::Bool(true), &r).unwrap();
        or.merge(mk(&AccumType::Or), &r).unwrap();
        assert_eq!(or.value(), Value::Bool(true));
        let mut min = mk(&AccumType::Min);
        min.combine(Value::Int(5), &r).unwrap();
        min.merge(mk(&AccumType::Min), &r).unwrap();
        assert_eq!(min.value(), Value::Int(5));
    }

    #[test]
    fn merge_rejects_kind_mismatch() {
        let r = reg();
        let mut s = mk(&AccumType::Sum(ValueType::Int));
        let err = s.merge(mk(&AccumType::Min), &r);
        assert!(matches!(err, Err(AccumError::TypeMismatch { .. })));
    }

    #[test]
    fn exact_merge_classification() {
        let r = reg();
        assert!(AccumType::Sum(ValueType::Int).is_exact_merge(&r));
        assert!(AccumType::Min.is_exact_merge(&r));
        assert!(AccumType::Max.is_exact_merge(&r));
        assert!(AccumType::Or.is_exact_merge(&r));
        assert!(AccumType::And.is_exact_merge(&r));
        assert!(AccumType::Set.is_exact_merge(&r));
        assert!(AccumType::Bag.is_exact_merge(&r));
        assert!(AccumType::Map(Box::new(AccumType::Bag)).is_exact_merge(&r));
        assert!(AccumType::GroupBy {
            key_arity: 1,
            nested: vec![AccumType::Sum(ValueType::Int), AccumType::Set],
        }
        .is_exact_merge(&r));
        // Float folds, concatenators, heaps, user accums: not exact.
        assert!(!AccumType::Sum(ValueType::Double).is_exact_merge(&r));
        assert!(!AccumType::Sum(ValueType::Str).is_exact_merge(&r));
        assert!(!AccumType::Avg.is_exact_merge(&r));
        assert!(!AccumType::List.is_exact_merge(&r));
        assert!(!AccumType::Array.is_exact_merge(&r));
        assert!(!AccumType::Heap { capacity: 2, fields: vec![] }.is_exact_merge(&r));
        assert!(!AccumType::User("ProductAccum".into()).is_exact_merge(&r));
        assert!(
            !AccumType::Map(Box::new(AccumType::Avg)).is_exact_merge(&r),
            "exactness must recurse through containers"
        );
    }
}
