//! User-defined accumulators.
//!
//! GSQL lets users extend the accumulator library by implementing a small
//! C++ interface declaring the combiner `⊕` ("Extensible Accumulator
//! Library", Section 3). This module is the Rust equivalent: implement
//! [`UserAccum`], register a factory under a type name, and the name
//! becomes usable in accumulator declarations.

use crate::instance::AccumError;
use pgraph::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A user-defined accumulator instance. Implementations provide the
/// combiner and snapshot; the engine drives Map/Reduce around them.
pub trait UserAccum: Send + Sync {
    /// The combiner `⊕`: folds one input into the internal value.
    fn combine(&mut self, input: Value) -> Result<(), AccumError>;
    /// Overwrites the internal value (the `=` operator).
    fn assign(&mut self, value: Value) -> Result<(), AccumError>;
    /// Snapshot of the internal value.
    fn value(&self) -> Value;
    /// Whether `⊕` is commutative + associative (enables deterministic
    /// parallel reduction). Defaults to `false` (conservative).
    fn order_invariant(&self) -> bool {
        false
    }
    /// Whether combining the same input repeatedly is idempotent
    /// (enables the multiplicity shortcut). Defaults to `false`.
    fn multiplicity_insensitive(&self) -> bool {
        false
    }
    /// Estimated heap footprint in bytes, used by the resource governor's
    /// accumulator memory budget. The default is a fixed nominal size;
    /// override for accumulators holding growing state.
    fn estimated_bytes(&self) -> usize {
        64
    }
    /// Clones the instance (accumulator snapshots require cloning).
    fn clone_box(&self) -> Box<dyn UserAccum>;
}

impl Clone for Box<dyn UserAccum> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for Box<dyn UserAccum> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UserAccum({})", self.value())
    }
}

type Factory = Arc<dyn Fn() -> Box<dyn UserAccum> + Send + Sync>;

/// Registry mapping user accumulator type names to instance factories.
#[derive(Clone, Default)]
pub struct UserAccumRegistry {
    factories: HashMap<String, Factory>,
}

impl UserAccumRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` with a factory; replaces any prior registration.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn UserAccum> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Instantiates a registered accumulator.
    pub fn instantiate(&self, name: &str) -> Option<Box<dyn UserAccum>> {
        self.factories.get(name).map(|f| f())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Order-invariance of a registered type (via a throwaway instance).
    pub fn order_invariant(&self, name: &str) -> Option<bool> {
        self.instantiate(name).map(|a| a.order_invariant())
    }

    /// Multiplicity-insensitivity of a registered type.
    pub fn multiplicity_insensitive(&self, name: &str) -> Option<bool> {
        self.instantiate(name).map(|a| a.multiplicity_insensitive())
    }
}

impl fmt::Debug for UserAccumRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.factories.keys().collect();
        names.sort();
        f.debug_struct("UserAccumRegistry").field("types", &names).finish()
    }
}

/// Example user accumulator: a product of numeric inputs — commutative
/// and associative, so it is declared order-invariant. Used by docs,
/// tests and the quickstart example.
#[derive(Debug, Clone)]
pub struct ProductAccum {
    value: f64,
}

impl Default for ProductAccum {
    fn default() -> Self {
        ProductAccum { value: 1.0 }
    }
}

impl UserAccum for ProductAccum {
    fn combine(&mut self, input: Value) -> Result<(), AccumError> {
        let x = input
            .as_f64()
            .ok_or_else(|| AccumError::TypeMismatch { expected: "numeric", got: input.clone() })?;
        self.value *= x;
        Ok(())
    }

    fn assign(&mut self, value: Value) -> Result<(), AccumError> {
        self.value = value
            .as_f64()
            .ok_or_else(|| AccumError::TypeMismatch { expected: "numeric", got: value.clone() })?;
        Ok(())
    }

    fn value(&self) -> Value {
        Value::Double(self.value)
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn UserAccum> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_instantiate() {
        let mut reg = UserAccumRegistry::new();
        reg.register("ProductAccum", || Box::<ProductAccum>::default());
        assert!(reg.contains("ProductAccum"));
        assert!(!reg.contains("Nope"));
        let mut a = reg.instantiate("ProductAccum").unwrap();
        a.combine(Value::Int(3)).unwrap();
        a.combine(Value::Double(0.5)).unwrap();
        assert_eq!(a.value(), Value::Double(1.5));
        assert_eq!(reg.order_invariant("ProductAccum"), Some(true));
        assert_eq!(reg.multiplicity_insensitive("ProductAccum"), Some(false));
    }

    #[test]
    fn product_rejects_non_numeric() {
        let mut a = ProductAccum::default();
        assert!(a.combine(Value::Str("x".into())).is_err());
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut a: Box<dyn UserAccum> = Box::<ProductAccum>::default();
        a.combine(Value::Int(2)).unwrap();
        let mut b = a.clone();
        b.combine(Value::Int(10)).unwrap();
        assert_eq!(a.value(), Value::Double(2.0));
        assert_eq!(b.value(), Value::Double(20.0));
    }
}
