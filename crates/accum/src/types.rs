//! Accumulator type descriptors.

use crate::user::UserAccumRegistry;
use pgraph::value::ValueType;
use std::fmt;

/// Sort direction for a [`AccumType::Heap`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending order.
    Asc,
    /// Descending order.
    Desc,
}

/// One component of a heap's lexicographic sort specification: the tuple
/// field index and its direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapField {
    /// Tuple field index the comparison reads.
    pub index: usize,
    /// Sort direction for that field.
    pub dir: SortDir,
}

/// The declared type of an accumulator (paper Section 3, "Accumulator
/// Types"). Type parameters of collection accumulators are dynamically
/// checked at combine time; the parameters that *change the combiner's
/// algebra* (numeric vs string `SumAccum`, nested accumulators of
/// `MapAccum`/`GroupByAccum`) are part of the descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum AccumType {
    /// `SumAccum<N>`: addition (numeric) or concatenation (string —
    /// order-dependent, excluded from the tractable class).
    Sum(ValueType),
    /// `MinAccum<O>` over any ordered type.
    Min,
    /// `MaxAccum<O>`.
    Max,
    /// `AvgAccum<N>`: order-invariant (internally sum + count).
    Avg,
    /// `OrAccum`: boolean disjunction.
    Or,
    /// `AndAccum`: boolean conjunction.
    And,
    /// `SetAccum<T>`: set insertion.
    Set,
    /// `BagAccum<T>`: bag insertion (stored as element → count, which is
    /// what keeps bags compressible under multiplicities).
    Bag,
    /// `ListAccum<T>`: order-dependent append.
    List,
    /// `ArrayAccum<T>`: order-dependent append (fixed-size semantics are
    /// not modeled; behaves as list).
    Array,
    /// `MapAccum<K, V>` where `V` is itself an accumulator type; inputs
    /// `(k -> v)` route `v` into the nested accumulator at key `k`.
    Map(Box<AccumType>),
    /// `HeapAccum<T>(capacity, f1 ASC|DESC, ...)`: a capacity-bounded
    /// priority queue of tuples under a lexicographic order.
    Heap {
        /// Maximum number of retained tuples.
        capacity: usize,
        /// Lexicographic sort specification.
        fields: Vec<HeapField>,
    },
    /// `GroupByAccum<K1...Kn, A1...Am>`: SQL GROUP BY as an accumulator
    /// (paper Example 12); inputs `(k1..kn -> a1..am)` route each `aj`
    /// into nested accumulator `Aj` of the group keyed by the key tuple.
    GroupBy {
        /// Number of leading key fields in each input tuple.
        key_arity: usize,
        /// Declared types of the per-group nested accumulators.
        nested: Vec<AccumType>,
    },
    /// A user-defined accumulator registered by name.
    User(String),
}

impl AccumType {
    /// Order-invariance of the combiner (paper Section 4.3): the Reduce
    /// phase result is deterministic iff the combiner is commutative and
    /// associative. `List`, `Array` and `SumAccum<STRING>` are the
    /// exceptions; `Map`/`GroupBy` are invariant iff nested accumulators
    /// are.
    pub fn is_order_invariant(&self, registry: &UserAccumRegistry) -> bool {
        match self {
            AccumType::Sum(ValueType::Str) => false,
            AccumType::List | AccumType::Array => false,
            AccumType::Map(v) => v.is_order_invariant(registry),
            AccumType::GroupBy { nested, .. } => {
                nested.iter().all(|n| n.is_order_invariant(registry))
            }
            AccumType::User(name) => registry.order_invariant(name).unwrap_or(false),
            _ => true,
        }
    }

    /// Multiplicity-insensitivity (paper Appendix A): combining the same
    /// input `μ` times equals combining it once. Such accumulators absorb
    /// binding multiplicities for free; `Sum`/`Avg`/`Bag` require the
    /// `μ·i` shortcut; `List`/`Array`/`SumAccum<STRING>` are sensitive
    /// with no shortcut (hence excluded from the tractable class).
    pub fn is_multiplicity_insensitive(&self, registry: &UserAccumRegistry) -> bool {
        match self {
            AccumType::Min | AccumType::Max | AccumType::Or | AccumType::And | AccumType::Set => {
                true
            }
            AccumType::Map(v) => v.is_multiplicity_insensitive(registry),
            AccumType::GroupBy { nested, .. } => nested
                .iter()
                .all(|n| n.is_multiplicity_insensitive(registry)),
            AccumType::User(name) => registry.multiplicity_insensitive(name).unwrap_or(false),
            _ => false,
        }
    }

    /// Whether the type admits a polynomial-time multiplicity shortcut
    /// (insensitive, or `Sum`-numeric / `Avg` / `Bag`, recursively for
    /// containers). Exactly the accumulators the paper's tractable class
    /// allows under Kleene patterns.
    pub fn supports_multiplicity_shortcut(&self, registry: &UserAccumRegistry) -> bool {
        match self {
            AccumType::Sum(ValueType::Str) | AccumType::List | AccumType::Array => false,
            AccumType::Sum(_) | AccumType::Avg | AccumType::Bag => true,
            // A heap truncates to its capacity, so `min(μ, capacity)`
            // repeated inserts reproduce μ-fold insertion exactly.
            AccumType::Heap { .. } => true,
            AccumType::Map(v) => v.supports_multiplicity_shortcut(registry),
            AccumType::GroupBy { nested, .. } => nested
                .iter()
                .all(|n| n.supports_multiplicity_shortcut(registry)),
            other => other.is_multiplicity_insensitive(registry),
        }
    }

    /// Whether partitioned (per-shard) accumulation followed by
    /// [`crate::instance::Accum::merge`] in *any* partition arrangement
    /// produces a state **bit-identical** to sequential accumulation —
    /// the gate the scatter-gather executor uses before splitting an
    /// ACCUM clause across shards.
    ///
    /// Stricter than [`is_order_invariant`](Self::is_order_invariant):
    /// `Avg` and `SumAccum<DOUBLE>` are order-invariant mathematically
    /// but fold through non-associative `f64` addition, and a `Heap`
    /// compares only its spec fields, so field-equal ties are resolved by
    /// insertion order. Those merge *correctly* but not *identically*,
    /// and are excluded.
    #[allow(clippy::only_used_in_recursion)] // registry threads through to nested Map/GroupBy cells
    pub fn is_exact_merge(&self, registry: &UserAccumRegistry) -> bool {
        match self {
            AccumType::Sum(ValueType::Int)
            | AccumType::Min
            | AccumType::Max
            | AccumType::Or
            | AccumType::And
            | AccumType::Set
            | AccumType::Bag => true,
            AccumType::Map(v) => v.is_exact_merge(registry),
            AccumType::GroupBy { nested, .. } => {
                nested.iter().all(|n| n.is_exact_merge(registry))
            }
            // f64 folds, concatenating types, tie-truncating heaps, and
            // opaque user accumulators: merge order would show through.
            _ => false,
        }
    }
}

impl fmt::Display for AccumType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccumType::Sum(t) => write!(f, "SumAccum<{t}>"),
            AccumType::Min => write!(f, "MinAccum"),
            AccumType::Max => write!(f, "MaxAccum"),
            AccumType::Avg => write!(f, "AvgAccum"),
            AccumType::Or => write!(f, "OrAccum"),
            AccumType::And => write!(f, "AndAccum"),
            AccumType::Set => write!(f, "SetAccum"),
            AccumType::Bag => write!(f, "BagAccum"),
            AccumType::List => write!(f, "ListAccum"),
            AccumType::Array => write!(f, "ArrayAccum"),
            AccumType::Map(v) => write!(f, "MapAccum<_, {v}>"),
            AccumType::Heap { capacity, fields } => {
                write!(f, "HeapAccum({capacity}")?;
                for h in fields {
                    write!(
                        f,
                        ", #{} {}",
                        h.index,
                        if h.dir == SortDir::Asc { "ASC" } else { "DESC" }
                    )?;
                }
                write!(f, ")")
            }
            AccumType::GroupBy { key_arity, nested } => {
                write!(f, "GroupByAccum<{key_arity} keys")?;
                for n in nested {
                    write!(f, ", {n}")?;
                }
                write!(f, ">")
            }
            AccumType::User(name) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> UserAccumRegistry {
        UserAccumRegistry::new()
    }

    #[test]
    fn order_invariance_classification() {
        let r = reg();
        assert!(AccumType::Sum(ValueType::Int).is_order_invariant(&r));
        assert!(AccumType::Sum(ValueType::Double).is_order_invariant(&r));
        assert!(!AccumType::Sum(ValueType::Str).is_order_invariant(&r));
        assert!(!AccumType::List.is_order_invariant(&r));
        assert!(!AccumType::Array.is_order_invariant(&r));
        assert!(AccumType::Avg.is_order_invariant(&r));
        assert!(AccumType::Heap { capacity: 3, fields: vec![] }.is_order_invariant(&r));
        assert!(AccumType::Map(Box::new(AccumType::Min)).is_order_invariant(&r));
        assert!(!AccumType::Map(Box::new(AccumType::List)).is_order_invariant(&r));
    }

    #[test]
    fn multiplicity_classification() {
        let r = reg();
        assert!(AccumType::Min.is_multiplicity_insensitive(&r));
        assert!(AccumType::Set.is_multiplicity_insensitive(&r));
        assert!(!AccumType::Sum(ValueType::Int).is_multiplicity_insensitive(&r));
        assert!(AccumType::Sum(ValueType::Int).supports_multiplicity_shortcut(&r));
        assert!(AccumType::Bag.supports_multiplicity_shortcut(&r));
        assert!(!AccumType::List.supports_multiplicity_shortcut(&r));
        assert!(!AccumType::Sum(ValueType::Str).supports_multiplicity_shortcut(&r));
        let gb = AccumType::GroupBy {
            key_arity: 2,
            nested: vec![AccumType::Sum(ValueType::Double), AccumType::Min],
        };
        assert!(gb.supports_multiplicity_shortcut(&r));
        let gb_bad = AccumType::GroupBy { key_arity: 1, nested: vec![AccumType::List] };
        assert!(!gb_bad.supports_multiplicity_shortcut(&r));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(AccumType::Sum(ValueType::Double).to_string(), "SumAccum<DOUBLE>");
        assert_eq!(
            AccumType::Map(Box::new(AccumType::Avg)).to_string(),
            "MapAccum<_, AvgAccum>"
        );
    }
}
