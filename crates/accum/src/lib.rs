//! # accum — GSQL-style accumulators
//!
//! Accumulators (Section 3 of the paper) are data containers holding an
//! internal value `V` and aggregating inputs `I` through a binary
//! combiner `⊕ : V × I → V`. Two assignment operators exist:
//!
//! * `a  = i` — set the internal value,
//! * `a += i` — combine: `a.val ← a.val ⊕ i`.
//!
//! This crate provides:
//!
//! * [`types::AccumType`] — the declared type of an accumulator
//!   (`SumAccum<INT>`, `MapAccum<K, SumAccum<DOUBLE>>`,
//!   `HeapAccum(cap, field ASC, ...)`, `GroupByAccum`, user-defined),
//! * [`instance::Accum`] — a live instance with `combine`, `assign`,
//!   snapshot `value()` and — crucially for Theorem 7.1 — multiplicity-
//!   aware combining [`instance::Accum::combine_with_multiplicity`]: a
//!   binding row carrying multiplicity `μ` (the number of shortest paths
//!   witnessing it) feeds `μ·i` into a `SumAccum`, bumps a `BagAccum`
//!   count by `μ`, and feeds multiplicity-insensitive accumulators
//!   (Min/Max/Set/Or/And/...) exactly once — avoiding the `μ`-fold
//!   (worst-case exponential) re-execution of the ACCUM clause,
//! * order-invariance and multiplicity-sensitivity classification
//!   (Section 4.3's determinism analysis and Section 7's tractable
//!   class), and
//! * [`user`] — the extensible accumulator interface (the paper's C++
//!   extension point, as a Rust trait + registry).

#![warn(missing_docs)]

pub mod instance;
pub mod types;
pub mod user;

pub use instance::{Accum, AccumError};
pub use types::AccumType;
pub use user::{UserAccum, UserAccumRegistry};
