//! Property-based tests for the pgraph substrate: BigCount arithmetic
//! against u128 ground truth, loader round-trips on random graphs, and
//! BFS-counting invariants.

use pgraph::bigcount::BigCount;
use pgraph::generators::{erdos_renyi, grid, ve_schema};
use pgraph::graph::{Graph, GraphBuilder, VertexId};
use pgraph::loader::{load_from_string, save_to_string};
use pgraph::value::Value;
use proptest::prelude::*;

proptest! {
    /// BigCount addition agrees with u128 on values that fit.
    #[test]
    fn bigcount_add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        let mut x = BigCount::from(a);
        x.add_assign(&BigCount::from(b));
        prop_assert_eq!(x, BigCount::from(a + b));
    }

    /// BigCount multiplication agrees with u128 on values that fit.
    #[test]
    fn bigcount_mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let x = BigCount::from(a).mul(&BigCount::from(b));
        prop_assert_eq!(x, BigCount::from(a as u128 * b as u128));
    }

    /// mul_u64 equals full mul.
    #[test]
    fn bigcount_mul_u64_matches_mul(a in 0u128..u128::MAX, k in 0u64..u64::MAX) {
        let mut x = BigCount::from(a);
        x.mul_u64(k);
        prop_assert_eq!(x, BigCount::from(a).mul(&BigCount::from(k)));
    }

    /// Display produces the same decimal string as u128 formatting.
    #[test]
    fn bigcount_display_matches_u128(a in 0u128..u128::MAX) {
        prop_assert_eq!(BigCount::from(a).to_string(), a.to_string());
    }

    /// Ordering agrees with u128 ordering.
    #[test]
    fn bigcount_ordering_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        prop_assert_eq!(BigCount::from(a).cmp(&BigCount::from(b)), a.cmp(&b));
    }

    /// Addition is commutative even across very different magnitudes.
    #[test]
    fn bigcount_add_commutes(bits_a in 0usize..300, bits_b in 0usize..300) {
        let a = BigCount::pow2(bits_a);
        let b = BigCount::pow2(bits_b);
        let mut x = a.clone();
        x.add_assign(&b);
        let mut y = b.clone();
        y.add_assign(&a);
        prop_assert_eq!(x, y);
    }
}

fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    erdos_renyi(n, p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Loader round-trips random graphs byte-identically.
    #[test]
    fn loader_round_trips(n in 1usize..40, p in 0.0f64..0.3, seed in 0u64..1000) {
        let g = random_graph(n, p, seed);
        let text = save_to_string(&g).unwrap();
        let g2 = load_from_string(&text).unwrap();
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        prop_assert_eq!(save_to_string(&g2).unwrap(), text);
    }

    /// BFS path counting is monotone under edge addition: adding an edge
    /// never decreases the number of distinct shortest paths *unless* it
    /// shortens the distance (in which case the distance drops).
    #[test]
    fn counting_monotonicity(n in 4usize..25, p in 0.05f64..0.3, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        let src = VertexId(0);
        let dst = VertexId((n - 1) as u32);
        let before = pgraph::algo::count_shortest_paths(&g, src, dst);
        // Re-add an existing edge (a parallel edge): distance unchanged,
        // count cannot shrink.
        if g.edge_count() > 0 {
            let mut g2 = g.clone();
            let e0 = g2.edges().next().unwrap();
            let (s, t) = g2.edge_endpoints(e0);
            let et = g2.edge_type_of(e0);
            g2.add_edge(et, s, t, vec![]).unwrap();
            let after = pgraph::algo::count_shortest_paths(&g2, src, dst);
            match (before, after) {
                (Some((d1, c1)), Some((d2, c2))) => {
                    prop_assert_eq!(d1, d2);
                    prop_assert!(c2 >= c1);
                }
                (None, None) => {}
                other => prop_assert!(false, "reachability changed: {:?}", other),
            }
        }
    }

    /// Grid path counts are binomial coefficients for arbitrary small
    /// grids.
    #[test]
    fn grid_counts_binomial(w in 2usize..7, h in 2usize..7) {
        let (g, m) = grid(w, h);
        let (len, cnt) =
            pgraph::algo::count_shortest_paths(&g, m[0][0], m[h - 1][w - 1]).unwrap();
        prop_assert_eq!(len, w + h - 2);
        // C(w+h-2, w-1)
        let mut expect = 1u128;
        for i in 0..(w - 1) {
            expect = expect * (h - 1 + i + 1) as u128 / (i + 1) as u128;
        }
        prop_assert_eq!(cnt, BigCount::from(expect));
    }
}

/// Attribute mutation round-trips through the loader.
#[test]
fn set_vertex_attr_persists() {
    let mut b = GraphBuilder::new(ve_schema());
    let v = b.vertex("V", &[("name", Value::from("old"))]).unwrap();
    let mut g = b.build();
    g.set_vertex_attr(v, 0, Value::from("new"));
    let g2 = load_from_string(&save_to_string(&g).unwrap()).unwrap();
    assert_eq!(g2.vertex_attr_by_name(v, "name"), Some(&Value::from("new")));
}
