//! Civil-calendar helpers for `DATETIME` values (epoch seconds).
//!
//! The LDBC-style workloads group by publication year and month, so the
//! evaluator needs `year(ts)` / `month(ts)` / `day(ts)` and the inverse
//! `to_epoch(y, m, d)`. Implemented with Howard Hinnant's proleptic-
//! Gregorian `days_from_civil` algorithm — exact, allocation-free and
//! dependency-free.

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m));
    debug_assert!((1..=31).contains(&d));
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as i64; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date `(year, month, day)` from days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Epoch seconds at midnight of a civil date.
pub fn to_epoch(y: i64, m: u32, d: u32) -> i64 {
    days_from_civil(y, m, d) * 86_400
}

/// Year of an epoch-seconds timestamp.
pub fn year(ts: i64) -> i64 {
    civil_from_days(ts.div_euclid(86_400)).0
}

/// Month (1–12) of an epoch-seconds timestamp.
pub fn month(ts: i64) -> i64 {
    civil_from_days(ts.div_euclid(86_400)).1 as i64
}

/// Day of month (1–31) of an epoch-seconds timestamp.
pub fn day(ts: i64) -> i64 {
    civil_from_days(ts.div_euclid(86_400)).2 as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970_01_01() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 2010-06-15 00:00:00 UTC = 1276560000
        assert_eq!(to_epoch(2010, 6, 15), 1_276_560_000);
        assert_eq!(year(1_276_560_000), 2010);
        assert_eq!(month(1_276_560_000), 6);
        assert_eq!(day(1_276_560_000), 15);
    }

    #[test]
    fn leap_years() {
        assert_eq!(civil_from_days(days_from_civil(2000, 2, 29)), (2000, 2, 29));
        assert_eq!(civil_from_days(days_from_civil(2012, 2, 29)), (2012, 2, 29));
        // 1900 was not a leap year: Feb 28 + 1 day = Mar 1.
        assert_eq!(civil_from_days(days_from_civil(1900, 2, 28) + 1), (1900, 3, 1));
    }

    #[test]
    fn round_trip_every_day_of_a_decade() {
        let start = days_from_civil(2009, 12, 28);
        let end = days_from_civil(2020, 1, 4);
        for z in start..=end {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn negative_timestamps() {
        assert_eq!(year(-86_400), 1969);
        assert_eq!((year(-1), month(-1), day(-1)), (1969, 12, 31));
    }
}
