//! Vertex-partitioned sharding: per-shard CSR segments over a finalized
//! [`Graph`].
//!
//! A [`ShardedGraph`] hash-partitions (or degree-aware-partitions) the
//! vertex set into `n` shards and materializes, per shard, a compact CSR
//! segment holding the **full adjacency of every owned vertex** — each
//! vertex's finalized CSR slice concatenated with its mutation-overlay
//! tail, in the exact order [`Graph::adjacency`] serves them. Routing a
//! vertex's adjacency through its owner segment therefore yields entries
//! that are **bit-identical** to the flat graph's view, which is what
//! lets the scatter-gather executor in `gsql-core` promise byte-identical
//! query output at any shard count: kernels scheduled shard-local see the
//! same edges in the same order, and the (associative, order-invariant)
//! accumulator combiners merge per-shard partials in deterministic shard
//! order.
//!
//! Construction happens either right after [`Graph::finalize`]
//! ([`ShardedGraph::build`], or [`ShardedGraph::build_finalized`] which
//! finalizes for you) or by re-sharding an existing [`Arc<Graph>`]
//! snapshot ([`ShardedGraph::from_arc`]). The build records a fingerprint
//! of the source adjacency (stats epoch, vertex/edge counts, overlay
//! size); [`ShardedGraph::matches`] lets consumers detect staleness after
//! further mutation and fall back to the flat graph.
//!
//! Cross-shard edges are indexed at build time: per shard, the count of
//! adjacency entries whose far endpoint lives on another shard and the
//! sorted list of *boundary vertices* (owned vertices with at least one
//! such entry). The executor uses the per-shard entry totals for its
//! fan-out cost estimates and the imbalance ratio for `/metrics`.

use crate::fxhash::FxHashMap;
use crate::graph::{AdjEntry, AdjView, Graph, VertexId};
use std::sync::Arc;

/// Vertex→shard assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Deterministic multiplicative hash of the vertex id. Cheap, stable
    /// under re-sharding, oblivious to degree skew.
    #[default]
    Hash,
    /// Degree-aware greedy balancing: vertices are placed
    /// highest-degree-first onto the currently least-loaded shard (load =
    /// adjacency entries owned), which keeps hub-heavy graphs (LDBC,
    /// Barabási–Albert) within a small imbalance ratio. Deterministic:
    /// ties break on vertex id, then shard index.
    DegreeAware,
}

/// How to build a [`ShardedGraph`]: shard count plus assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards (clamped to ≥ 1).
    pub shards: usize,
    /// Vertex assignment policy.
    pub policy: ShardPolicy,
}

impl ShardSpec {
    /// A hash-partitioned spec over `shards` shards.
    pub fn hash(shards: usize) -> ShardSpec {
        ShardSpec { shards: shards.max(1), policy: ShardPolicy::Hash }
    }

    /// A degree-aware spec over `shards` shards.
    pub fn degree_aware(shards: usize) -> ShardSpec {
        ShardSpec { shards: shards.max(1), policy: ShardPolicy::DegreeAware }
    }
}

/// One shard's CSR segment: the owned vertices (ascending id) and their
/// materialized adjacency runs.
#[derive(Debug, Clone, Default)]
struct ShardSegment {
    /// Owned vertices, ascending. `verts[slot]` is the vertex stored at
    /// `offsets[slot]..offsets[slot + 1]`.
    verts: Vec<VertexId>,
    /// Segment-local CSR offsets (length `verts.len() + 1`).
    offsets: Vec<u32>,
    /// Concatenated adjacency entries of every owned vertex, each run in
    /// the exact order the flat graph serves it (CSR slice ++ overlay).
    adj: Vec<AdjEntry>,
    /// Owned vertices with ≥ 1 cross-shard adjacency entry, ascending —
    /// the shard's boundary set.
    boundary: Vec<VertexId>,
    /// Adjacency entries whose far endpoint is owned by another shard.
    cross_entries: u64,
}

/// A vertex-partitioned view of a [`Graph`]: per-shard CSR segments plus
/// owner/slot routing arrays and a cross-shard edge index. See the
/// module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    policy: ShardPolicy,
    /// `owner[v.0]` = shard owning vertex `v`.
    owner: Vec<u32>,
    /// `slot[v.0]` = index of `v` inside its owner segment's `verts`.
    slot: Vec<u32>,
    segments: Vec<ShardSegment>,
    // Source fingerprint, for staleness detection.
    built_epoch: u64,
    built_vertices: usize,
    built_edges: usize,
    built_overlay: usize,
}

impl ShardedGraph {
    /// Partitions `graph` per `spec` and materializes the per-shard CSR
    /// segments. Deterministic: the same graph and spec always produce
    /// the same partition and segment layout.
    pub fn build(graph: &Graph, spec: ShardSpec) -> ShardedGraph {
        let n = spec.shards.max(1);
        let nv = graph.vertex_count();
        let owner: Vec<u32> = match spec.policy {
            ShardPolicy::Hash => (0..nv as u32).map(|v| hash_owner(v, n)).collect(),
            ShardPolicy::DegreeAware => degree_aware_owners(graph, n),
        };

        let mut segments: Vec<ShardSegment> = vec![ShardSegment::default(); n];
        let mut slot = vec![0u32; nv];
        // First pass: owned-vertex lists (ascending by construction) and
        // entry totals so the adjacency vectors allocate once.
        let mut entry_totals = vec![0usize; n];
        for v in 0..nv {
            let s = owner[v] as usize;
            slot[v] = segments[s].verts.len() as u32;
            segments[s].verts.push(VertexId(v as u32));
            entry_totals[s] += graph.adjacency(VertexId(v as u32)).len();
        }
        for (seg, total) in segments.iter_mut().zip(&entry_totals) {
            seg.offsets = Vec::with_capacity(seg.verts.len() + 1);
            seg.offsets.push(0);
            seg.adj = Vec::with_capacity(*total);
        }
        // Second pass: copy each owned vertex's full adjacency (CSR slice
        // ++ overlay tail, same entries, same order) into its segment and
        // index the cross-shard entries.
        for v in 0..nv {
            let s = owner[v] as usize;
            let seg = &mut segments[s];
            let mut crossing = false;
            for a in graph.adjacency(VertexId(v as u32)) {
                if owner.get(a.other.0 as usize).copied().unwrap_or(0) != owner[v] {
                    seg.cross_entries += 1;
                    crossing = true;
                }
                seg.adj.push(*a);
            }
            seg.offsets.push(seg.adj.len() as u32);
            if crossing {
                seg.boundary.push(VertexId(v as u32));
            }
        }

        ShardedGraph {
            policy: spec.policy,
            owner,
            slot,
            segments,
            built_epoch: graph.stats().epoch(),
            built_vertices: nv,
            built_edges: graph.edge_count(),
            built_overlay: graph.overlay_entry_count(),
        }
    }

    /// Finalizes `graph` (folding any mutation overlay into the CSR) and
    /// shards the result — the `finalize()`-time construction path.
    pub fn build_finalized(graph: &mut Graph, spec: ShardSpec) -> ShardedGraph {
        graph.finalize();
        ShardedGraph::build(graph, spec)
    }

    /// Re-shards an existing shared snapshot (the server's per-request
    /// `Arc<Graph>` view).
    pub fn from_arc(graph: &Arc<Graph>, spec: ShardSpec) -> ShardedGraph {
        ShardedGraph::build(graph, spec)
    }

    /// Whether this sharding still describes `graph`'s adjacency
    /// structure: same stats epoch, vertex/edge counts, and overlay size
    /// as at build time. Consumers must fall back to the flat graph when
    /// this is `false` (the graph mutated since the build).
    pub fn matches(&self, graph: &Graph) -> bool {
        self.built_epoch == graph.stats().epoch()
            && self.built_vertices == graph.vertex_count()
            && self.built_edges == graph.edge_count()
            && self.built_overlay == graph.overlay_entry_count()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.segments.len()
    }

    /// The assignment policy this sharding was built with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Shard owning vertex `v` (0 for vertices unknown at build time, so
    /// routing never panics on a stale view — though [`matches`] should
    /// have diverted such callers already).
    ///
    /// [`matches`]: ShardedGraph::matches
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner.get(v.0 as usize).copied().unwrap_or(0) as usize
    }

    /// Vertex `v`'s adjacency served from its owner shard's segment —
    /// bit-identical entries, in the same order, as
    /// [`Graph::adjacency`] on the source graph.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> AdjView<'_> {
        let Some(&s) = self.owner.get(v.0 as usize) else {
            return AdjView::from_slice(&[]);
        };
        let seg = &self.segments[s as usize];
        let slot = self.slot[v.0 as usize] as usize;
        let (lo, hi) = (seg.offsets[slot] as usize, seg.offsets[slot + 1] as usize);
        AdjView::from_slice(&seg.adj[lo..hi])
    }

    /// `(owned vertices, adjacency entries)` stored by shard `s`.
    pub fn shard_entries(&self, s: usize) -> (usize, usize) {
        let seg = &self.segments[s];
        (seg.verts.len(), seg.adj.len())
    }

    /// Adjacency entries of shard `s` whose far endpoint lives on
    /// another shard.
    pub fn shard_cross_entries(&self, s: usize) -> u64 {
        self.segments[s].cross_entries
    }

    /// Shard `s`'s boundary vertices (owned, with ≥ 1 cross-shard entry),
    /// ascending.
    pub fn boundary(&self, s: usize) -> &[VertexId] {
        &self.segments[s].boundary
    }

    /// Total cross-shard adjacency entries across all shards.
    pub fn cross_entries(&self) -> u64 {
        self.segments.iter().map(|s| s.cross_entries).sum()
    }

    /// Load imbalance: max shard adjacency entries ÷ mean shard
    /// adjacency entries (1.0 = perfectly balanced; 1.0 for empty or
    /// single-shard graphs).
    pub fn imbalance_ratio(&self) -> f64 {
        let total: usize = self.segments.iter().map(|s| s.adj.len()).sum();
        if total == 0 || self.segments.len() <= 1 {
            return 1.0;
        }
        let mean = total as f64 / self.segments.len() as f64;
        let max = self.segments.iter().map(|s| s.adj.len()).max().unwrap_or(0);
        max as f64 / mean
    }
}

/// Deterministic multiplicative hash (Fibonacci hashing) of a vertex id
/// onto `n` shards.
#[inline]
fn hash_owner(v: u32, n: usize) -> u32 {
    let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // High bits are the well-mixed ones.
    ((h >> 32) % n as u64) as u32
}

/// Greedy highest-degree-first placement onto the least-loaded shard.
fn degree_aware_owners(graph: &Graph, n: usize) -> Vec<u32> {
    let nv = graph.vertex_count();
    let mut by_degree: Vec<(usize, u32)> = (0..nv as u32)
        .map(|v| (graph.adjacency(VertexId(v)).len(), v))
        .collect();
    // Highest degree first; ties on ascending id keep the order (and
    // thus the partition) deterministic.
    by_degree.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut owner = vec![0u32; nv];
    let mut load = vec![0u64; n];
    for (deg, v) in by_degree {
        let s = load
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (**l, *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        owner[v as usize] = s as u32;
        // +1 so zero-degree vertices still spread across shards.
        load[s] += deg as u64 + 1;
    }
    owner
}

/// Per-shard planning statistics consumed by the `gsql-core` planner for
/// EXPLAIN shard fan-out nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Vertices owned by the shard.
    pub vertices: usize,
    /// Adjacency entries stored by the shard's segment.
    pub entries: usize,
    /// Entries whose far endpoint is on another shard.
    pub cross_entries: u64,
}

impl ShardedGraph {
    /// Per-shard [`ShardStats`], in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.segments
            .iter()
            .map(|s| ShardStats {
                vertices: s.verts.len(),
                entries: s.adj.len(),
                cross_entries: s.cross_entries,
            })
            .collect()
    }

    /// Groups `keys` by owner shard, preserving each shard's keys in
    /// input order, and returns `(shard, keys)` pairs for non-empty
    /// shards in ascending shard order — the executor's scatter schedule.
    pub fn partition_keys(&self, keys: &[VertexId]) -> Vec<(usize, Vec<VertexId>)> {
        let mut per: FxHashMap<usize, Vec<VertexId>> = FxHashMap::default();
        for &k in keys {
            per.entry(self.owner(k)).or_default().push(k);
        }
        let mut out: Vec<(usize, Vec<VertexId>)> = per.into_iter().collect();
        out.sort_by_key(|(s, _)| *s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, diamond_chain, erdos_renyi};

    fn graphs() -> Vec<Graph> {
        vec![
            diamond_chain(12).0,
            erdos_renyi(300, 4.0 / 300.0, 7),
            barabasi_albert(300, 4, 17),
        ]
    }

    #[test]
    fn segment_adjacency_is_bit_identical_to_flat() {
        for g in graphs() {
            for &shards in &[1usize, 2, 4, 8] {
                for policy in [ShardPolicy::Hash, ShardPolicy::DegreeAware] {
                    let sg = ShardedGraph::build(&g, ShardSpec { shards, policy });
                    for v in 0..g.vertex_count() {
                        let v = VertexId(v as u32);
                        assert_eq!(
                            g.adjacency(v).to_vec(),
                            sg.adjacency(v).to_vec(),
                            "vertex {v:?} shards={shards} policy={policy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let g = erdos_renyi(200, 5.0 / 200.0, 3);
        for policy in [ShardPolicy::Hash, ShardPolicy::DegreeAware] {
            let a = ShardedGraph::build(&g, ShardSpec { shards: 4, policy });
            let b = ShardedGraph::build(&g, ShardSpec { shards: 4, policy });
            assert_eq!(a.owner, b.owner);
            for s in 0..4 {
                assert_eq!(a.shard_entries(s), b.shard_entries(s));
                assert_eq!(a.boundary(s), b.boundary(s));
            }
        }
    }

    #[test]
    fn every_vertex_owned_once_and_entry_totals_reconcile() {
        let g = erdos_renyi(250, 6.0 / 250.0, 11);
        let sg = ShardedGraph::build(&g, ShardSpec::hash(4));
        let mut owned = 0usize;
        let mut entries = 0usize;
        for s in 0..sg.shard_count() {
            let (v, e) = sg.shard_entries(s);
            owned += v;
            entries += e;
        }
        assert_eq!(owned, g.vertex_count());
        let flat: usize = (0..g.vertex_count())
            .map(|v| g.adjacency(VertexId(v as u32)).len())
            .sum();
        assert_eq!(entries, flat);
    }

    #[test]
    fn degree_aware_beats_hash_on_skewed_graphs() {
        // Barabási–Albert grows hubs; greedy placement should not be
        // *worse* balanced than hashing, and must stay near 1.0.
        let g = barabasi_albert(800, 4, 17);
        let hash = ShardedGraph::build(&g, ShardSpec::hash(4));
        let da = ShardedGraph::build(&g, ShardSpec::degree_aware(4));
        assert!(da.imbalance_ratio() <= hash.imbalance_ratio() + 1e-9);
        assert!(da.imbalance_ratio() < 1.2, "ratio {}", da.imbalance_ratio());
    }

    #[test]
    fn staleness_fingerprint_detects_mutation() {
        let (mut g, spine) = diamond_chain(6);
        let sg = ShardedGraph::build(&g, ShardSpec::hash(2));
        assert!(sg.matches(&g));
        let et = g.schema().edge_type_id("E").unwrap();
        g.add_edge(et, spine[0], spine[6], vec![]).unwrap();
        assert!(!sg.matches(&g), "overlay mutation must invalidate the sharding");
        g.finalize();
        assert!(!sg.matches(&g), "finalize bumps the epoch");
    }

    #[test]
    fn cross_shard_index_counts_only_foreign_endpoints() {
        let (g, _) = diamond_chain(8);
        // Single shard: nothing crosses.
        let one = ShardedGraph::build(&g, ShardSpec::hash(1));
        assert_eq!(one.cross_entries(), 0);
        assert!(one.boundary(0).is_empty());
        let sg = ShardedGraph::build(&g, ShardSpec::hash(3));
        for s in 0..3 {
            for &v in sg.boundary(s) {
                assert_eq!(sg.owner(v), s);
                let crosses =
                    g.adjacency(v).iter().any(|a| sg.owner(a.other) != s);
                assert!(crosses, "boundary vertex {v:?} has no cross-shard entry");
            }
        }
        assert!(sg.cross_entries() > 0, "3-way split of a chain must cross");
    }

    #[test]
    fn partition_keys_preserves_per_shard_input_order() {
        let g = erdos_renyi(100, 3.0 / 100.0, 5);
        let sg = ShardedGraph::build(&g, ShardSpec::hash(4));
        let keys: Vec<VertexId> = [17u32, 3, 99, 42, 0, 63].into_iter().map(VertexId).collect();
        let parts = sg.partition_keys(&keys);
        let mut seen = 0usize;
        let mut last_shard = None;
        for (s, part) in &parts {
            if let Some(p) = last_shard {
                assert!(*s > p, "shards must come back ascending");
            }
            last_shard = Some(*s);
            seen += part.len();
            // Keys inside one shard keep their relative input order.
            let order: Vec<usize> = part
                .iter()
                .map(|k| keys.iter().position(|x| x == k).unwrap())
                .collect();
            assert!(order.windows(2).all(|w| w[0] < w[1]));
            for k in part {
                assert_eq!(sg.owner(*k), *s);
            }
        }
        assert_eq!(seen, keys.len());
    }
}
