//! Synthetic graph generators used by tests, examples and benchmarks.
//!
//! Includes the exact gadget graphs from the paper's examples (the
//! diamond chain of Figure 7 / Example 11, `G1` of Figure 5 / Example 9,
//! `G2` of Figure 6 / Example 10), the running SalesGraph / LinkedIn
//! examples, and standard random-graph models (Erdős–Rényi,
//! Barabási–Albert) for scaling studies. All random generators are
//! seeded and deterministic.

use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::schema::{AttrDef, Schema};
use crate::value::{Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schema with a single vertex type `V { name: STRING }` and a single
/// directed edge type `E` — the setting of the diamond-chain experiment
/// ("All involved vertices had type V ... and all involved edges had type
/// E").
pub fn ve_schema() -> Schema {
    let mut s = Schema::new();
    s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)])
        .unwrap();
    s.add_edge_type("E", true, vec![]).unwrap();
    s
}

/// The diamond-chain graph of Figure 7: spine vertices `v0..=vn`, with
/// diamond `i` connecting `v_i` to `v_{i+1}` through two parallel
/// length-2 branches. There are exactly `2^k` directed `E`-paths from
/// `v0` to `v_k`, all of length `2k`, and the three legality semantics
/// coincide on it (Example 11). `diamond_chain(30)` is the paper's
/// 91-vertex / 120-edge experiment graph.
///
/// Returns the graph and the spine vertices `[v0, ..., vn]`.
pub fn diamond_chain(n: usize) -> (Graph, Vec<VertexId>) {
    let mut b = GraphBuilder::new(ve_schema());
    let mut spine = Vec::with_capacity(n + 1);
    let v0 = b.vertex("V", &[("name", Value::from("v0"))]).unwrap();
    spine.push(v0);
    for i in 0..n {
        let top = b
            .vertex("V", &[("name", Value::from(format!("d{i}a")))])
            .unwrap();
        let bot = b
            .vertex("V", &[("name", Value::from(format!("d{i}b")))])
            .unwrap();
        let next = b
            .vertex("V", &[("name", Value::from(format!("v{}", i + 1)))])
            .unwrap();
        let prev = spine[i];
        b.edge("E", prev, top, &[]).unwrap();
        b.edge("E", prev, bot, &[]).unwrap();
        b.edge("E", top, next, &[]).unwrap();
        b.edge("E", bot, next, &[]).unwrap();
        spine.push(next);
    }
    (b.build(), spine)
}

/// Graph `G1` of Figure 5 (Example 9). All edges are directed `E` edges.
/// Returns the graph and the 12 vertices indexed `1..=12` (index 0 is a
/// placeholder so `g1.1` is vertex "1").
pub fn example9_g1() -> (Graph, Vec<VertexId>) {
    let mut b = GraphBuilder::new(ve_schema());
    let mut v = vec![VertexId(u32::MAX)];
    for i in 1..=12 {
        v.push(
            b.vertex("V", &[("name", Value::from(format!("{i}")))])
                .unwrap(),
        );
    }
    for (s, t) in [
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (2, 6),
        (6, 4),
        (3, 7),
        (7, 8),
        (8, 3),
        (2, 9),
        (9, 10),
        (10, 11),
        (11, 12),
        (12, 4),
    ] {
        b.edge("E", v[s], v[t], &[]).unwrap();
    }
    (b.build(), v)
}

/// Graph `G2` of Figure 6 (Example 10): the pattern `E>*.F>.E>*` matches a
/// path from 1 to 4 **only** under all-shortest-paths semantics, because
/// the unique satisfying path `1-2-3-5-6-2-3-4` repeats vertices 2 and 3
/// and the edge between them. Returns the graph and vertices `1..=6`
/// (index 0 placeholder).
pub fn example10_g2() -> (Graph, Vec<VertexId>) {
    let mut s = Schema::new();
    s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)])
        .unwrap();
    s.add_edge_type("E", true, vec![]).unwrap();
    s.add_edge_type("F", true, vec![]).unwrap();
    let mut b = GraphBuilder::new(s);
    let mut v = vec![VertexId(u32::MAX)];
    for i in 1..=6 {
        v.push(
            b.vertex("V", &[("name", Value::from(format!("{i}")))])
                .unwrap(),
        );
    }
    b.edge("E", v[1], v[2], &[]).unwrap();
    b.edge("E", v[2], v[3], &[]).unwrap();
    b.edge("F", v[3], v[5], &[]).unwrap();
    b.edge("E", v[5], v[6], &[]).unwrap();
    b.edge("E", v[6], v[2], &[]).unwrap();
    b.edge("E", v[3], v[4], &[]).unwrap();
    (b.build(), v)
}

/// A directed cycle `v0 -> v1 -> ... -> v_{n-1} -> v0` over the `V`/`E`
/// schema. Returns the graph and the vertices in cycle order.
pub fn directed_cycle(n: usize) -> (Graph, Vec<VertexId>) {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            b.vertex("V", &[("name", Value::from(format!("v{i}")))])
                .unwrap()
        })
        .collect();
    for i in 0..n {
        b.edge("E", vs[i], vs[(i + 1) % n], &[]).unwrap();
    }
    (b.build(), vs)
}

/// A directed path `v0 -> v1 -> ... -> vn` over the `V`/`E` schema.
pub fn directed_path(n: usize) -> (Graph, Vec<VertexId>) {
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..=n)
        .map(|i| {
            b.vertex("V", &[("name", Value::from(format!("v{i}")))])
                .unwrap()
        })
        .collect();
    for i in 0..n {
        b.edge("E", vs[i], vs[i + 1], &[]).unwrap();
    }
    (b.build(), vs)
}

/// A `w × h` directed grid with east and south edges, for path-counting
/// cross-checks (the number of monotone paths corner-to-corner is the
/// binomial coefficient `C(w+h-2, w-1)`). Returns the graph and the
/// row-major vertex matrix.
pub fn grid(w: usize, h: usize) -> (Graph, Vec<Vec<VertexId>>) {
    let mut b = GraphBuilder::new(ve_schema());
    let mut m = vec![vec![VertexId(u32::MAX); w]; h];
    for (r, row) in m.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = b
                .vertex("V", &[("name", Value::from(format!("r{r}c{c}")))])
                .unwrap();
        }
    }
    for r in 0..h {
        for c in 0..w {
            if c + 1 < w {
                b.edge("E", m[r][c], m[r][c + 1], &[]).unwrap();
            }
            if r + 1 < h {
                b.edge("E", m[r][c], m[r + 1][c], &[]).unwrap();
            }
        }
    }
    (b.build(), m)
}

/// Erdős–Rényi `G(n, p)` digraph over the `V`/`E` schema, seeded.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            b.vertex("V", &[("name", Value::from(format!("v{i}")))])
                .unwrap()
        })
        .collect();
    for &s in &vs {
        for &t in &vs {
            if s != t && rng.gen::<f64>() < p {
                b.edge("E", s, t, &[]).unwrap();
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph (directed edges from the
/// new vertex to `m` sampled existing vertices), seeded. Produces the
/// power-law degree distributions typical of social networks.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > m && m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            b.vertex("V", &[("name", Value::from(format!("v{i}")))])
                .unwrap()
        })
        .collect();
    // Degree-proportional sampling via a repeated-endpoint pool.
    let mut pool: Vec<usize> = (0..=m).collect();
    for i in 0..m {
        b.edge("E", vs[i + 1], vs[i], &[]).unwrap();
    }
    for i in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != i && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.edge("E", vs[i], vs[t], &[]).unwrap();
            pool.push(t);
            pool.push(i);
        }
    }
    b.build()
}

/// Schema for the paper's running SalesGraph example (Examples 3–6):
/// `Customer { name }`, `Product { name, category, list_price }`,
/// directed `Bought { quantity, discount }` and directed `Likes`.
pub fn sales_schema() -> Schema {
    let mut s = Schema::new();
    s.add_vertex_type("Customer", vec![AttrDef::new("name", ValueType::Str)])
        .unwrap();
    s.add_vertex_type(
        "Product",
        vec![
            AttrDef::new("name", ValueType::Str),
            AttrDef::new("category", ValueType::Str),
            AttrDef::new("list_price", ValueType::Double),
        ],
    )
    .unwrap();
    s.add_edge_type(
        "Bought",
        true,
        vec![
            AttrDef::new("quantity", ValueType::Int),
            AttrDef::new("discount", ValueType::Double),
        ],
    )
    .unwrap();
    s.add_edge_type("Likes", true, vec![]).unwrap();
    s
}

/// The small fixed SalesGraph used by the quickstart example and the
/// paper-example tests. Customers: alice, bob, carol, dave. Products:
/// three toys and one book. Purchases and likes are chosen so that the
/// Example 4 / Example 6 queries have hand-checkable answers.
pub fn sales_graph() -> Graph {
    let mut b = GraphBuilder::new(sales_schema());
    let alice = b.vertex("Customer", &[("name", Value::from("alice"))]).unwrap();
    let bob = b.vertex("Customer", &[("name", Value::from("bob"))]).unwrap();
    let carol = b.vertex("Customer", &[("name", Value::from("carol"))]).unwrap();
    let dave = b.vertex("Customer", &[("name", Value::from("dave"))]).unwrap();
    let robot = b
        .vertex(
            "Product",
            &[
                ("name", Value::from("robot")),
                ("category", Value::from("toy")),
                ("list_price", Value::Double(30.0)),
            ],
        )
        .unwrap();
    let blocks = b
        .vertex(
            "Product",
            &[
                ("name", Value::from("blocks")),
                ("category", Value::from("toy")),
                ("list_price", Value::Double(10.0)),
            ],
        )
        .unwrap();
    let kite = b
        .vertex(
            "Product",
            &[
                ("name", Value::from("kite")),
                ("category", Value::from("toy")),
                ("list_price", Value::Double(20.0)),
            ],
        )
        .unwrap();
    let novel = b
        .vertex(
            "Product",
            &[
                ("name", Value::from("novel")),
                ("category", Value::from("book")),
                ("list_price", Value::Double(15.0)),
            ],
        )
        .unwrap();
    let buy = |b: &mut GraphBuilder, c, p, q: i64, d: f64| {
        b.edge(
            "Bought",
            c,
            p,
            &[("quantity", Value::Int(q)), ("discount", Value::Double(d))],
        )
        .unwrap();
    };
    buy(&mut b, alice, robot, 2, 0.0);
    buy(&mut b, alice, blocks, 1, 0.1);
    buy(&mut b, bob, robot, 1, 0.5);
    buy(&mut b, bob, novel, 3, 0.0);
    buy(&mut b, carol, kite, 4, 0.25);
    buy(&mut b, dave, novel, 1, 0.0);
    for (c, p) in [
        (alice, robot),
        (alice, blocks),
        (bob, robot),
        (bob, kite),
        (carol, robot),
        (carol, blocks),
        (carol, kite),
        (dave, novel),
    ] {
        b.edge("Likes", c, p, &[]).unwrap();
    }
    b.build()
}

/// A randomized SalesGraph for benchmarks: `nc` customers, `np` products
/// (half toys), with `per_customer` purchases and likes each, seeded.
pub fn random_sales_graph(nc: usize, np: usize, per_customer: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(sales_schema());
    let customers: Vec<VertexId> = (0..nc)
        .map(|i| {
            b.vertex("Customer", &[("name", Value::from(format!("c{i}")))])
                .unwrap()
        })
        .collect();
    let products: Vec<VertexId> = (0..np)
        .map(|i| {
            let cat = if i % 2 == 0 { "toy" } else { "book" };
            b.vertex(
                "Product",
                &[
                    ("name", Value::from(format!("p{i}"))),
                    ("category", Value::from(cat)),
                    ("list_price", Value::Double(5.0 + (i % 50) as f64)),
                ],
            )
            .unwrap()
        })
        .collect();
    for &c in &customers {
        for _ in 0..per_customer {
            let p = products[rng.gen_range(0..np)];
            b.edge(
                "Bought",
                c,
                p,
                &[
                    ("quantity", Value::Int(rng.gen_range(1..5))),
                    ("discount", Value::Double(rng.gen_range(0.0..0.5))),
                ],
            )
            .unwrap();
            let l = products[rng.gen_range(0..np)];
            b.edge("Likes", c, l, &[]).unwrap();
        }
    }
    b.build()
}

/// Schema and small instance for Example 1: the LinkedIn graph — `Person
/// { name, company }` with undirected `Connected { since }` edges.
pub fn linkedin_graph() -> Graph {
    let mut s = Schema::new();
    s.add_vertex_type(
        "Person",
        vec![
            AttrDef::new("name", ValueType::Str),
            AttrDef::new("company", ValueType::Str),
        ],
    )
    .unwrap();
    s.add_edge_type("Connected", false, vec![AttrDef::new("since", ValueType::Int)])
        .unwrap();
    let mut b = GraphBuilder::new(s);
    let mk = |b: &mut GraphBuilder, n: &str, c: &str| {
        b.vertex("Person", &[("name", Value::from(n)), ("company", Value::from(c))])
            .unwrap()
    };
    let ann = mk(&mut b, "ann", "ACME");
    let ben = mk(&mut b, "ben", "ACME");
    let cam = mk(&mut b, "cam", "Globex");
    let dot = mk(&mut b, "dot", "Initech");
    let eve = mk(&mut b, "eve", "Globex");
    let fay = mk(&mut b, "fay", "Hooli");
    for (a, c, y) in [
        (ann, cam, 2017),
        (ann, dot, 2015),
        (ann, eve, 2019),
        (ben, cam, 2018),
        (ben, fay, 2014),
        (ann, ben, 2016),
        (cam, eve, 2020),
    ] {
        b.edge("Connected", a, c, &[("since", Value::Int(y))]).unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_chain_30_matches_paper_size() {
        let (g, spine) = diamond_chain(30);
        assert_eq!(g.vertex_count(), 91);
        assert_eq!(g.edge_count(), 120);
        assert_eq!(spine.len(), 31);
    }

    #[test]
    fn diamond_chain_names() {
        let (g, spine) = diamond_chain(2);
        assert_eq!(
            g.vertex_attr_by_name(spine[0], "name"),
            Some(&Value::from("v0"))
        );
        assert_eq!(
            g.vertex_attr_by_name(spine[2], "name"),
            Some(&Value::from("v2"))
        );
    }

    #[test]
    fn g1_shape() {
        let (g, _) = example9_g1();
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 14);
    }

    #[test]
    fn g2_shape() {
        let (g, _) = example10_g2();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn grid_degree() {
        let (g, m) = grid(3, 3);
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.outdegree(m[0][0], None), 2);
        assert_eq!(g.outdegree(m[2][2], None), 0);
    }

    #[test]
    fn er_is_deterministic_per_seed() {
        let a = erdos_renyi(30, 0.1, 7);
        let b = erdos_renyi(30, 0.1, 7);
        let c = erdos_renyi(30, 0.1, 8);
        assert_eq!(a.edge_count(), b.edge_count());
        // Different seed almost surely differs for 870 Bernoulli trials.
        assert_ne!(a.edge_count(), c.edge_count());
    }

    #[test]
    fn ba_vertex_and_edge_counts() {
        let g = barabasi_albert(50, 3, 1);
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 3 + 46 * 3);
    }

    #[test]
    fn sales_graph_shape() {
        let g = sales_graph();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 14);
    }

    #[test]
    fn linkedin_has_undirected_connections() {
        let g = linkedin_graph();
        let et = g.schema().edge_type_id("Connected").unwrap();
        assert!(!g.schema().is_directed(et));
        assert_eq!(g.edge_count(), 7);
    }
}
