//! Write-ahead log, checkpoints, and crash recovery.
//!
//! ## On-disk layout (`--data-dir`)
//!
//! ```text
//! wal.log           length+CRC32-framed mutation batches
//! checkpoint.cur    newest checkpoint: "#WALSEQ <n>" + loader text format
//! checkpoint.prev   previous checkpoint (fallback if cur is corrupt)
//! ```
//!
//! ## Frame format
//!
//! Each committed batch is one frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload = [seq: u64 LE] [nops: u32 LE] [op]*
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload only. `seq` increases by one
//! per committed batch and ties frames to checkpoints: a checkpoint
//! written after batch `n` records `#WALSEQ n`, and recovery replays
//! only frames with `seq > n`.
//!
//! ## Recovery invariants
//!
//! * A torn tail (crash mid-append) is **normal**, not corruption:
//!   replay truncates the file back to the last complete, CRC-valid
//!   frame and reports the dropped byte count.
//! * A CRC mismatch or undecodable payload mid-log stops replay at the
//!   last good frame — the durable prefix — and truncates the rest.
//! * `checkpoint.cur` failing to parse falls back to `checkpoint.prev`
//!   plus a longer WAL suffix; both failing is a [`RecoveryError`].
//! * Replay never panics on arbitrary bytes (fuzzed in
//!   `tests/fuzz_no_panic` via [`decode_frames`]).

use crate::graph::Graph;
use crate::loader::{self, LoadError};
use crate::mutate::{apply_batch, BatchSummary, MutationOp};
use crate::schema::{ETypeId, VTypeId};
use crate::value::Value;
use crate::graph::{EdgeId, VertexId};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---- CRC-32 (IEEE 802.3), table-driven ----------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- binary op codec -----------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over untrusted bytes; every read is bounds-checked.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            put_i64(out, *i);
        }
        Value::Double(d) => {
            out.push(3);
            put_u64(out, d.to_bits());
        }
        Value::Str(s) => {
            out.push(4);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Value::DateTime(t) => {
            out.push(5);
            put_i64(out, *t);
        }
        Value::Vertex(v) => {
            out.push(6);
            put_u32(out, v.0);
        }
        Value::Edge(e) => {
            out.push(7);
            put_u32(out, e.0);
        }
        // Collection values are not storable attributes; the executor
        // rejects them before a batch reaches the WAL. Encode as Null so
        // the codec is total (a replayed Null fails schema checks loudly
        // rather than corrupting the log).
        Value::Tuple(_) | Value::List(_) | Value::Set(_) | Value::Map(_) => out.push(0),
    }
}

fn decode_value(c: &mut Cur<'_>) -> Option<Value> {
    Some(match c.u8()? {
        0 => Value::Null,
        1 => Value::Bool(c.u8()? != 0),
        2 => Value::Int(c.i64()?),
        3 => Value::Double(f64::from_bits(c.u64()?)),
        4 => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            Value::Str(String::from_utf8(bytes.to_vec()).ok()?)
        }
        5 => Value::DateTime(c.i64()?),
        6 => Value::Vertex(VertexId(c.u32()?)),
        7 => Value::Edge(EdgeId(c.u32()?)),
        _ => return None,
    })
}

fn encode_values(out: &mut Vec<u8>, vs: &[Value]) {
    put_u16(out, vs.len() as u16);
    for v in vs {
        encode_value(out, v);
    }
}

fn decode_values(c: &mut Cur<'_>) -> Option<Vec<Value>> {
    let n = c.u16()? as usize;
    let mut vs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vs.push(decode_value(c)?);
    }
    Some(vs)
}

fn encode_op(out: &mut Vec<u8>, op: &MutationOp) {
    match op {
        MutationOp::AddVertex { vtype, attrs } => {
            out.push(0);
            put_u32(out, vtype.0);
            encode_values(out, attrs);
        }
        MutationOp::AddEdge { etype, src, dst, attrs } => {
            out.push(1);
            put_u32(out, etype.0);
            put_u32(out, src.0);
            put_u32(out, dst.0);
            encode_values(out, attrs);
        }
        MutationOp::SetVertexAttr { v, attr, value } => {
            out.push(2);
            put_u32(out, v.0);
            put_u32(out, *attr as u32);
            encode_value(out, value);
        }
        MutationOp::SetEdgeAttr { e, attr, value } => {
            out.push(3);
            put_u32(out, e.0);
            put_u32(out, *attr as u32);
            encode_value(out, value);
        }
        MutationOp::DeleteVertex { v } => {
            out.push(4);
            put_u32(out, v.0);
        }
        MutationOp::DeleteEdge { e } => {
            out.push(5);
            put_u32(out, e.0);
        }
    }
}

fn decode_op(c: &mut Cur<'_>) -> Option<MutationOp> {
    Some(match c.u8()? {
        0 => MutationOp::AddVertex { vtype: VTypeId(c.u32()?), attrs: decode_values(c)? },
        1 => MutationOp::AddEdge {
            etype: ETypeId(c.u32()?),
            src: VertexId(c.u32()?),
            dst: VertexId(c.u32()?),
            attrs: decode_values(c)?,
        },
        2 => MutationOp::SetVertexAttr {
            v: VertexId(c.u32()?),
            attr: c.u32()? as usize,
            value: decode_value(c)?,
        },
        3 => MutationOp::SetEdgeAttr {
            e: EdgeId(c.u32()?),
            attr: c.u32()? as usize,
            value: decode_value(c)?,
        },
        4 => MutationOp::DeleteVertex { v: VertexId(c.u32()?) },
        5 => MutationOp::DeleteEdge { e: EdgeId(c.u32()?) },
        _ => return None,
    })
}

/// Encodes one batch into a complete frame (header + payload).
pub fn encode_frame(seq: u64, ops: &[MutationOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + ops.len() * 16);
    put_u64(&mut payload, seq);
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        encode_op(&mut payload, op);
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// One decoded batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalBatch {
    pub seq: u64,
    pub ops: Vec<MutationOp>,
}

/// Why frame decoding stopped before the end of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStop {
    /// Clean end of log: the buffer ended exactly on a frame boundary.
    Eof,
    /// Incomplete header or payload at the tail (crash mid-append).
    TornTail,
    /// CRC mismatch: the frame was fully present but its bytes are wrong.
    BadCrc,
    /// CRC passed but the payload didn't decode (impossible-length field,
    /// unknown tag): treated as corruption.
    BadPayload,
    /// Sequence number went backwards or repeated — frames out of order.
    BadSeq { prev: u64, got: u64 },
}

impl FrameStop {
    pub fn is_clean(&self) -> bool {
        matches!(self, FrameStop::Eof)
    }
}

/// Decodes frames from `buf` until the end or the first defect. Returns
/// the good batches, the byte offset of the end of the last good frame
/// (the durable prefix), and why decoding stopped. Never panics on
/// arbitrary input.
pub fn decode_frames(buf: &[u8]) -> (Vec<WalBatch>, usize, FrameStop) {
    let mut batches = Vec::new();
    let mut off = 0usize;
    let mut last_seq: Option<u64> = None;
    loop {
        if off == buf.len() {
            return (batches, off, FrameStop::Eof);
        }
        if buf.len() - off < 8 {
            return (batches, off, FrameStop::TornTail);
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        if buf.len() - off - 8 < len {
            return (batches, off, FrameStop::TornTail);
        }
        let payload = &buf[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            return (batches, off, FrameStop::BadCrc);
        }
        let mut c = Cur { buf: payload, pos: 0 };
        let decoded = (|| {
            let seq = c.u64()?;
            let nops = c.u32()? as usize;
            let mut ops = Vec::with_capacity(nops.min(4096));
            for _ in 0..nops {
                ops.push(decode_op(&mut c)?);
            }
            if !c.done() {
                return None; // trailing garbage inside a CRC-valid frame
            }
            Some(WalBatch { seq, ops })
        })();
        let Some(batch) = decoded else {
            return (batches, off, FrameStop::BadPayload);
        };
        if let Some(prev) = last_seq {
            if batch.seq <= prev {
                return (batches, off, FrameStop::BadSeq { prev, got: batch.seq });
            }
        }
        last_seq = Some(batch.seq);
        batches.push(batch);
        off += 8 + len;
    }
}

// ---- WAL writer ----------------------------------------------------------

/// When `append` calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// fsync after every committed batch (full durability, slowest).
    Always,
    /// Group commit: fsync once every `n` batches (and on flush/drain).
    EveryN(u32),
    /// Only fsync on explicit flush/checkpoint/drain (fastest; a crash
    /// may lose the OS-buffered suffix, never corrupt it).
    OnFlushOnly,
}

impl FlushPolicy {
    /// Parses `always`, `never`/`onflush`, or `every=N` / a bare integer.
    pub fn parse(s: &str) -> Option<FlushPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Some(FlushPolicy::Always),
            "never" | "onflush" | "on-flush" => Some(FlushPolicy::OnFlushOnly),
            other => {
                let n = other.strip_prefix("every=").unwrap_or(other);
                n.parse::<u32>().ok().filter(|&n| n > 0).map(FlushPolicy::EveryN)
            }
        }
    }
}

/// Lock-free counters exported as `wal.*` server metrics.
#[derive(Default)]
pub struct WalStats {
    /// Frames appended since open.
    pub appends: AtomicU64,
    /// fsync calls issued.
    pub fsyncs: AtomicU64,
    /// Frames replayed during the last recovery.
    pub replayed: AtomicU64,
    /// Bytes appended since open.
    pub bytes: AtomicU64,
}

/// Appends frames to `wal.log`, fsyncing per [`FlushPolicy`].
pub struct WalWriter {
    file: File,
    policy: FlushPolicy,
    unsynced: u32,
    stats: Arc<WalStats>,
    /// Set by the first append/fsync failure. A failed `write_all` may
    /// leave a partial frame on disk; a later successful append would
    /// land after that garbage and be silently dropped by recovery's
    /// truncate-at-first-defect rule. So one failure poisons the writer:
    /// every subsequent append refuses until the file is reopened.
    failed: bool,
}

impl WalWriter {
    fn open(path: &Path, policy: FlushPolicy, stats: Arc<WalStats>) -> std::io::Result<WalWriter> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { file, policy, unsynced: 0, stats, failed: false })
    }

    fn poisoned_err() -> std::io::Error {
        std::io::Error::other(
            "WAL writer poisoned by an earlier write failure; reopen the data dir to resume",
        )
    }

    /// Appends one batch frame; write-ahead means this must succeed (and
    /// per policy, be fsynced) before the in-memory graph is published.
    pub fn append(&mut self, seq: u64, ops: &[MutationOp]) -> std::io::Result<()> {
        if self.failed {
            return Err(Self::poisoned_err());
        }
        let frame = encode_frame(seq, ops);
        if let Err(e) = self.file.write_all(&frame) {
            self.failed = true;
            return Err(e);
        }
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.unsynced += 1;
        let due = match self.policy {
            FlushPolicy::Always => true,
            FlushPolicy::EveryN(n) => self.unsynced >= n,
            FlushPolicy::OnFlushOnly => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// fsyncs any unsynced appends (drain / checkpoint barrier).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.failed {
            return Err(Self::poisoned_err());
        }
        if self.unsynced > 0 {
            if let Err(e) = self.file.sync_all() {
                // Post-fsync-failure page-cache state is undefined
                // (kernel may drop the dirty pages): poison.
                self.failed = true;
                return Err(e);
            }
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.unsynced = 0;
        }
        Ok(())
    }
}

// ---- checkpoints ---------------------------------------------------------

const WAL_FILE: &str = "wal.log";
const CKPT_CUR: &str = "checkpoint.cur";
const CKPT_PREV: &str = "checkpoint.prev";
const WALSEQ_PREFIX: &str = "#WALSEQ ";

/// Serializes `g` with a `#WALSEQ <seq>` header (the checkpoint format).
pub fn checkpoint_to_string(g: &Graph, seq: u64) -> Result<String, LoadError> {
    let mut text = format!("{WALSEQ_PREFIX}{seq}\n");
    loader::save_to_writer(g, &mut text)?;
    Ok(text)
}

/// Parses a checkpoint: the `#WALSEQ` header plus the loader text format.
pub fn checkpoint_from_str(text: &str) -> Result<(Graph, u64), LoadError> {
    let (header, rest) = text.split_once('\n').ok_or(LoadError::Syntax {
        line: 1,
        msg: "empty checkpoint".into(),
    })?;
    let seq = header
        .strip_prefix(WALSEQ_PREFIX)
        .and_then(|s| s.trim().parse::<u64>().ok())
        .ok_or(LoadError::Syntax { line: 1, msg: "missing #WALSEQ header".into() })?;
    Ok((loader::load_from_string(rest)?, seq))
}

// ---- recovery ------------------------------------------------------------

/// Structured failure from [`LiveGraph::open`]: the data directory could
/// not be recovered into a usable graph.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// Filesystem error touching the data dir.
    Io(String),
    /// Neither `checkpoint.cur` nor `checkpoint.prev` was usable.
    Checkpoint(String),
    /// A replayed batch failed to apply (the log contradicts the
    /// checkpoint — e.g. mismatched files from different stores).
    Apply { seq: u64, msg: String },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "data dir I/O error: {e}"),
            RecoveryError::Checkpoint(e) => write!(f, "no usable checkpoint: {e}"),
            RecoveryError::Apply { seq, msg } => {
                write!(f, "WAL batch seq {seq} failed to apply: {msg}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery did, for logs and `/metrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Which checkpoint seeded the graph: "cur", "prev", or "fresh".
    pub checkpoint: String,
    /// The seeding checkpoint's sequence number.
    pub checkpoint_seq: u64,
    /// Frames replayed on top of the checkpoint.
    pub frames_replayed: u64,
    /// Ops inside those frames.
    pub ops_replayed: u64,
    /// Frames skipped because the checkpoint already contained them.
    pub frames_skipped: u64,
    /// Bytes cut from the WAL tail (torn tail or trailing corruption).
    pub truncated_bytes: u64,
    /// Human-readable anomalies (corruption found and repaired around).
    pub warnings: Vec<String>,
}

// ---- LiveGraph -----------------------------------------------------------

/// Commit failure: the published snapshot is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitError {
    /// The batch itself was invalid (bad id, arity, endpoint type).
    Graph(String),
    /// Optimistic-concurrency check failed: the batch was built against
    /// the snapshot at `pinned` but another writer has since published
    /// `committed`. The batch's vertex/edge ids may no longer name the
    /// entities the query matched (compaction re-densifies ids), so it
    /// must be rebuilt against a fresh snapshot, never applied.
    Conflict {
        /// The sequence number the batch was pinned at.
        pinned: u64,
        /// The sequence number actually published at commit time.
        committed: u64,
    },
    /// The WAL append/fsync failed — durability can no longer be
    /// guaranteed, so the writer should degrade to read-only.
    Wal(String),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Graph(e) => write!(f, "{e}"),
            CommitError::Conflict { pinned, committed } => write!(
                f,
                "snapshot conflict: batch pinned at seq {pinned} but seq {committed} is \
                 published; re-run the query against a fresh snapshot"
            ),
            CommitError::Wal(e) => write!(f, "WAL write failed: {e}"),
        }
    }
}

impl std::error::Error for CommitError {}

struct WriterState {
    seq: u64,
    wal: Option<WalWriter>,
    dir: Option<PathBuf>,
    batches_since_ckpt: u64,
    checkpoint_every: u64,
}

/// A mutable graph behind epoch-pinned snapshots, optionally durable.
///
/// Readers call [`LiveGraph::snapshot`] and get an `Arc<Graph>` frozen at
/// that instant — a pinned epoch that no later commit mutates. The writer
/// path is serialized by a mutex: clone the current snapshot, apply the
/// batch, append it to the WAL (write-**ahead**: durable before visible),
/// then publish the new snapshot atomically.
pub struct LiveGraph {
    /// The current snapshot and the seq of the last batch folded into
    /// it, published together so readers can pin both atomically.
    published: RwLock<(Arc<Graph>, u64)>,
    writer: Mutex<WriterState>,
    stats: Arc<WalStats>,
}

impl LiveGraph {
    /// In-memory only: mutations work, nothing is durable.
    pub fn in_memory(graph: Graph) -> LiveGraph {
        LiveGraph {
            published: RwLock::new((Arc::new(graph), 0)),
            writer: Mutex::new(WriterState {
                seq: 0,
                wal: None,
                dir: None,
                batches_since_ckpt: 0,
                checkpoint_every: 0,
            }),
            stats: Arc::new(WalStats::default()),
        }
    }

    /// Opens (or initializes) a durable graph in `dir`.
    ///
    /// * Empty dir: writes an initial checkpoint of `seed` at seq 0.
    /// * Existing dir: recovers — load `checkpoint.cur` (falling back to
    ///   `checkpoint.prev`), replay the WAL suffix, truncate any torn or
    ///   corrupt tail. `seed` is ignored in this case: the durable state
    ///   wins.
    ///
    /// `checkpoint_every` = batches between checkpoints (0 = only at
    /// clean shutdown via [`LiveGraph::checkpoint_now`]).
    pub fn open(
        dir: &Path,
        seed: Graph,
        policy: FlushPolicy,
        checkpoint_every: u64,
    ) -> Result<(LiveGraph, RecoveryReport), RecoveryError> {
        std::fs::create_dir_all(dir).map_err(|e| RecoveryError::Io(e.to_string()))?;
        let stats = Arc::new(WalStats::default());
        let cur = dir.join(CKPT_CUR);
        let prev = dir.join(CKPT_PREV);
        let wal_path = dir.join(WAL_FILE);

        let mut report = RecoveryReport::default();
        let (graph, ckpt_seq) = if !cur.exists() && !prev.exists() {
            // No checkpoint at all. A non-empty WAL here is an orphan —
            // its ops were recorded against a base graph we no longer
            // have, so replaying them onto `seed` would produce either a
            // confusing Apply error or a silently wrong state. Refuse.
            if let Ok(m) = std::fs::metadata(&wal_path) {
                if m.len() > 0 {
                    return Err(RecoveryError::Checkpoint(format!(
                        "no checkpoint found but a non-empty wal.log ({} bytes) exists; \
                         refusing to replay an orphan WAL onto the seed graph — move or \
                         delete {} to reinitialize",
                        m.len(),
                        wal_path.display()
                    )));
                }
            }
            // Fresh directory: seed it so the state is self-contained.
            let mut seed = seed;
            seed.finalize();
            let text = checkpoint_to_string(&seed, 0)
                .map_err(|e| RecoveryError::Io(e.to_string()))?;
            loader::atomic_write_bytes(&cur, text.as_bytes())
                .map_err(|e| RecoveryError::Io(e.to_string()))?;
            report.checkpoint = "fresh".into();
            (seed, 0)
        } else {
            let mut tried = Vec::new();
            let mut loaded = None;
            for (name, path) in [("cur", &cur), ("prev", &prev)] {
                if !path.exists() {
                    continue;
                }
                match std::fs::read_to_string(path) {
                    Ok(text) => match checkpoint_from_str(&text) {
                        Ok((g, seq)) => {
                            if name != "cur" {
                                report.warnings.push(format!(
                                    "checkpoint.cur unusable; recovered from checkpoint.prev (seq {seq})"
                                ));
                            }
                            report.checkpoint = name.into();
                            loaded = Some((g, seq));
                            break;
                        }
                        Err(e) => tried.push(format!("{name}: {e}")),
                    },
                    Err(e) => tried.push(format!("{name}: {e}")),
                }
            }
            loaded.ok_or_else(|| RecoveryError::Checkpoint(tried.join("; ")))?
        };
        report.checkpoint_seq = ckpt_seq;

        // Replay the WAL suffix.
        let mut graph = graph;
        let mut seq = ckpt_seq;
        if wal_path.exists() {
            let buf = std::fs::read(&wal_path).map_err(|e| RecoveryError::Io(e.to_string()))?;
            let (batches, good_end, stop) = decode_frames(&buf);
            for b in batches {
                if b.seq <= ckpt_seq {
                    report.frames_skipped += 1;
                    continue;
                }
                apply_batch(&mut graph, &b.ops).map_err(|e| RecoveryError::Apply {
                    seq: b.seq,
                    msg: e.to_string(),
                })?;
                report.frames_replayed += 1;
                report.ops_replayed += b.ops.len() as u64;
                seq = b.seq;
            }
            if !stop.is_clean() {
                let dropped = (buf.len() - good_end) as u64;
                report.truncated_bytes = dropped;
                report.warnings.push(match &stop {
                    FrameStop::TornTail => {
                        format!("torn WAL tail: truncated {dropped} bytes")
                    }
                    FrameStop::BadCrc => {
                        format!("WAL CRC mismatch at offset {good_end}: truncated {dropped} bytes")
                    }
                    FrameStop::BadPayload => format!(
                        "undecodable WAL payload at offset {good_end}: truncated {dropped} bytes"
                    ),
                    FrameStop::BadSeq { prev, got } => format!(
                        "WAL sequence regression ({prev} -> {got}) at offset {good_end}: truncated {dropped} bytes"
                    ),
                    FrameStop::Eof => unreachable!(),
                });
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| RecoveryError::Io(e.to_string()))?;
                f.set_len(good_end as u64).map_err(|e| RecoveryError::Io(e.to_string()))?;
                f.sync_all().map_err(|e| RecoveryError::Io(e.to_string()))?;
            }
        }
        stats.replayed.store(report.frames_replayed, Ordering::Relaxed);

        let wal = WalWriter::open(&wal_path, policy, stats.clone())
            .map_err(|e| RecoveryError::Io(e.to_string()))?;
        Ok((
            LiveGraph {
                published: RwLock::new((Arc::new(graph), seq)),
                writer: Mutex::new(WriterState {
                    seq,
                    wal: Some(wal),
                    dir: Some(dir.to_path_buf()),
                    batches_since_ckpt: 0,
                    checkpoint_every,
                }),
                stats,
            },
            report,
        ))
    }

    /// Pins the current snapshot. Cheap (one Arc clone); the returned
    /// graph never changes.
    pub fn snapshot(&self) -> Arc<Graph> {
        self.published.read().unwrap().0.clone()
    }

    /// Pins the current snapshot together with the seq of the last batch
    /// folded into it. Pass that seq to [`LiveGraph::commit_checked`] to
    /// reject a batch whose ids were resolved against a snapshot a
    /// concurrent writer has since superseded.
    pub fn snapshot_pinned(&self) -> (Arc<Graph>, u64) {
        let p = self.published.read().unwrap();
        (p.0.clone(), p.1)
    }

    /// WAL counters for `/metrics`.
    pub fn stats(&self) -> &Arc<WalStats> {
        &self.stats
    }

    /// Whether commits are durable (opened with a data dir).
    pub fn is_durable(&self) -> bool {
        self.writer.lock().unwrap().dir.is_some()
    }

    /// Applies `ops` as one atomic, durable batch and publishes the new
    /// snapshot. Readers holding older snapshots are unaffected.
    ///
    /// No concurrency check: the batch's ids are trusted to be current.
    /// Use [`LiveGraph::commit_checked`] when the batch was built by
    /// resolving ids against a pinned snapshot that concurrent writers
    /// may have superseded.
    pub fn commit(&self, ops: &[MutationOp]) -> Result<(BatchSummary, u64), CommitError> {
        self.commit_checked(ops, None)
    }

    /// Like [`LiveGraph::commit`], but first verifies (inside the writer
    /// lock) that the published seq still equals `expected_seq` from
    /// [`LiveGraph::snapshot_pinned`]. A mismatch means another commit
    /// landed after the batch's ids were resolved — deletions re-densify
    /// ids and insertions shift the provisional-id base, so stale ids
    /// can silently name the wrong entities even when still in range —
    /// and the batch is rejected with [`CommitError::Conflict`].
    pub fn commit_checked(
        &self,
        ops: &[MutationOp],
        expected_seq: Option<u64>,
    ) -> Result<(BatchSummary, u64), CommitError> {
        let mut w = self.writer.lock().unwrap();
        if let Some(pinned) = expected_seq {
            if w.seq != pinned {
                return Err(CommitError::Conflict { pinned, committed: w.seq });
            }
        }
        if ops.is_empty() {
            return Ok((BatchSummary::default(), w.seq));
        }
        // Apply to a private clone; the published snapshot stays intact
        // until the batch is durable.
        let mut next = Graph::clone(&self.snapshot());
        let summary =
            apply_batch(&mut next, ops).map_err(|e| CommitError::Graph(e.to_string()))?;
        let seq = w.seq + 1;
        if let Some(wal) = w.wal.as_mut() {
            wal.append(seq, ops).map_err(|e| CommitError::Wal(e.to_string()))?;
        } else if w.dir.is_some() {
            // Durable store whose writer was lost (failed trim reopen):
            // refuse rather than silently committing without durability.
            return Err(CommitError::Wal(
                "WAL writer unavailable after an earlier failure; reopen the data dir".into(),
            ));
        }
        w.seq = seq;
        *self.published.write().unwrap() = (Arc::new(next), seq);
        w.batches_since_ckpt += 1;
        if w.checkpoint_every > 0 && w.batches_since_ckpt >= w.checkpoint_every {
            // A failed periodic checkpoint leaves a longer WAL, not an
            // inconsistent store — but say so instead of hiding it. (A
            // trim/reopen failure also drops the writer, so the next
            // commit fails loudly and the server degrades to read-only.)
            if let Err(e) = Self::checkpoint_locked(&mut w, &self.snapshot()) {
                eprintln!("gsql: warning: periodic checkpoint failed (WAL retained): {e}");
            }
        }
        Ok((summary, seq))
    }

    /// fsyncs pending WAL appends (drain barrier).
    pub fn flush(&self) -> Result<(), CommitError> {
        let mut w = self.writer.lock().unwrap();
        if let Some(wal) = w.wal.as_mut() {
            wal.sync().map_err(|e| CommitError::Wal(e.to_string()))?;
        }
        Ok(())
    }

    /// Forces a checkpoint now (clean shutdown, tests).
    pub fn checkpoint_now(&self) -> Result<(), CommitError> {
        let mut w = self.writer.lock().unwrap();
        Self::checkpoint_locked(&mut w, &self.snapshot())
    }

    /// Checkpoint protocol (under the writer lock):
    /// 1. fsync the WAL — everything up to `seq` is durable first.
    /// 2. Atomically write the checkpoint to a temp name.
    /// 3. Rotate cur → prev, temp → cur, fsync the directory.
    /// 4. Trim WAL frames already covered by **prev** (so prev + the
    ///    remaining log can still fully recover if cur is lost).
    fn checkpoint_locked(w: &mut WriterState, snap: &Arc<Graph>) -> Result<(), CommitError> {
        let Some(dir) = w.dir.clone() else {
            return Ok(()); // in-memory: nothing to do
        };
        let io = |e: std::io::Error| CommitError::Wal(e.to_string());
        if let Some(wal) = w.wal.as_mut() {
            wal.sync().map_err(|e| CommitError::Wal(e.to_string()))?;
        }
        let cur = dir.join(CKPT_CUR);
        let prev = dir.join(CKPT_PREV);
        let text = checkpoint_to_string(snap, w.seq)
            .map_err(|e| CommitError::Wal(e.to_string()))?;
        // Write the new checkpoint under a temp name first, then rotate:
        // cur -> prev must happen before tmp -> cur so a crash between
        // the renames still leaves one complete checkpoint behind.
        let tmp = dir.join("checkpoint.new");
        loader::atomic_write_bytes(&tmp, text.as_bytes()).map_err(io)?;
        let prev_seq = if cur.exists() {
            let prev_seq = std::fs::read_to_string(&cur)
                .ok()
                .and_then(|t| checkpoint_from_str(&t).ok())
                .map(|(_, s)| s)
                .unwrap_or(0);
            std::fs::rename(&cur, &prev).map_err(io)?;
            prev_seq
        } else {
            0
        };
        std::fs::rename(&tmp, &cur).map_err(io)?;
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        w.batches_since_ckpt = 0;

        // Trim: drop frames prev already covers. Rewrite-and-rename so a
        // crash mid-trim leaves either the old or the new log.
        let wal_path = dir.join(WAL_FILE);
        if let Ok(buf) = std::fs::read(&wal_path) {
            let (batches, _, _) = decode_frames(&buf);
            let mut kept = Vec::new();
            for b in &batches {
                if b.seq > prev_seq {
                    kept.extend_from_slice(&encode_frame(b.seq, &b.ops));
                }
            }
            if kept.len() < buf.len() {
                let Some(old) = w.wal.take() else { return Ok(()) };
                let policy = old.policy;
                let stats = old.stats.clone();
                // Close the old fd BEFORE the rename lands: once the new
                // wal.log is in place, the old fd names an unlinked inode
                // and any append through it would be acknowledged yet
                // unrecoverable. Everything is already fsynced (step 1)
                // and we hold the writer lock, so no append can slip in.
                drop(old);
                let trim = loader::atomic_write_bytes(&wal_path, &kept);
                // Always reopen from the path — whether or not the trim
                // rename happened, the path names the authoritative log.
                // On reopen failure leave `w.wal` empty: commit() then
                // refuses durable writes instead of silently appending
                // nowhere or dropping durability.
                w.wal = Some(WalWriter::open(&wal_path, policy, stats).map_err(io)?);
                trim.map_err(io)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sales_graph;
    use crate::loader::save_to_string;

    fn mk_ops(g: &Graph, n: usize) -> Vec<MutationOp> {
        let vt = g.schema().vertex_type_id("Customer").unwrap();
        let nattrs = g.schema().vertex_type(vt).attrs.len();
        (0..n)
            .map(|i| MutationOp::AddVertex {
                vtype: vt,
                attrs: (0..nattrs)
                    .map(|k| if k == 0 { Value::Str(format!("p{i}")) } else { Value::Int(i as i64) })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn frame_round_trip() {
        let g = sales_graph();
        let ops = mk_ops(&g, 3);
        let mut buf = encode_frame(7, &ops);
        buf.extend_from_slice(&encode_frame(8, &ops[..1]));
        let (batches, end, stop) = decode_frames(&buf);
        assert_eq!(stop, FrameStop::Eof);
        assert_eq!(end, buf.len());
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 7);
        assert_eq!(batches[0].ops, ops);
        assert_eq!(batches[1].ops, ops[..1]);
    }

    #[test]
    fn value_codec_round_trips_every_storable_type() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(3.25),
            Value::Double(f64::NAN),
            Value::Str("héllo\tworld".into()),
            Value::DateTime(1_700_000_000),
            Value::Vertex(VertexId(9)),
            Value::Edge(EdgeId(3)),
        ];
        let mut buf = Vec::new();
        encode_values(&mut buf, &vals);
        let mut c = Cur { buf: &buf, pos: 0 };
        let back = decode_values(&mut c).unwrap();
        assert!(c.done());
        // NaN round-trips bit-exactly; Value's total equality handles it.
        assert_eq!(back, vals);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let g = sales_graph();
        let ops = mk_ops(&g, 2);
        let mut buf = encode_frame(1, &ops);
        let whole = buf.len();
        buf.extend_from_slice(&encode_frame(2, &ops));
        buf.truncate(whole + 5); // mid-header of frame 2
        let (batches, end, stop) = decode_frames(&buf);
        assert_eq!(stop, FrameStop::TornTail);
        assert_eq!(end, whole);
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn bit_flip_stops_at_last_good_frame() {
        let g = sales_graph();
        let ops = mk_ops(&g, 2);
        let mut buf = encode_frame(1, &ops);
        let first = buf.len();
        buf.extend_from_slice(&encode_frame(2, &ops));
        buf[first + 12] ^= 0x40; // flip a payload bit in frame 2
        let (batches, end, stop) = decode_frames(&buf);
        assert_eq!(stop, FrameStop::BadCrc);
        assert_eq!(end, first);
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn seq_regression_is_detected() {
        let g = sales_graph();
        let ops = mk_ops(&g, 1);
        let mut buf = encode_frame(5, &ops);
        buf.extend_from_slice(&encode_frame(5, &ops));
        let (batches, _, stop) = decode_frames(&buf);
        assert_eq!(batches.len(), 1);
        assert_eq!(stop, FrameStop::BadSeq { prev: 5, got: 5 });
    }

    #[test]
    fn byte_soup_never_panics() {
        // A deterministic xorshift so the test needs no RNG dependency.
        let mut s = 0x9E37_79B9u32;
        let mut soup = Vec::with_capacity(4096);
        for _ in 0..4096 {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            soup.push(s as u8);
        }
        for start in 0..64 {
            let _ = decode_frames(&soup[start..]);
        }
        let _ = decode_frames(&[]);
        let _ = decode_frames(&[0xFF; 7]);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem
    fn live_graph_durability_round_trip() {
        let dir = std::env::temp_dir().join(format!("gsql-wal-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = sales_graph();
        let (live, rep) =
            LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep.checkpoint, "fresh");
        let ops = mk_ops(&live.snapshot(), 4);
        live.commit(&ops).unwrap();
        live.commit(&[MutationOp::DeleteVertex { v: VertexId(0) }]).unwrap();
        let expect = save_to_string(&live.snapshot()).unwrap();
        drop(live);

        // Reopen: checkpoint(seq 0) + 2 replayed frames == same bytes.
        let (live2, rep2) = LiveGraph::open(&dir, seed, FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep2.frames_replayed, 2);
        assert_eq!(save_to_string(&live2.snapshot()).unwrap(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem
    fn checkpoint_trims_wal_and_prev_still_recovers() {
        let dir = std::env::temp_dir().join(format!("gsql-wal-ck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = sales_graph();
        let (live, _) = LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        let ops = mk_ops(&live.snapshot(), 1);
        live.commit(&ops).unwrap();
        live.checkpoint_now().unwrap();
        live.commit(&ops).unwrap();
        let expect = save_to_string(&live.snapshot()).unwrap();
        drop(live);

        // cur checkpoint (seq 1) exists; delete it to force the prev path.
        assert!(dir.join(CKPT_PREV).exists());
        std::fs::remove_file(dir.join(CKPT_CUR)).unwrap();
        let (live2, rep) = LiveGraph::open(&dir, seed, FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep.checkpoint, "prev");
        assert_eq!(save_to_string(&live2.snapshot()).unwrap(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem
    fn truncated_checkpoint_falls_back_to_prev() {
        let dir = std::env::temp_dir().join(format!("gsql-wal-tc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = sales_graph();
        let (live, _) = LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        live.commit(&mk_ops(&live.snapshot(), 2)).unwrap();
        live.checkpoint_now().unwrap();
        let expect = save_to_string(&live.snapshot()).unwrap();
        drop(live);

        // Truncate cur mid-file — simulates a crash during a non-atomic
        // save. Recovery must fall back to prev + WAL replay.
        let cur = dir.join(CKPT_CUR);
        let text = std::fs::read(&cur).unwrap();
        std::fs::write(&cur, &text[..text.len() / 2]).unwrap();
        let (live2, rep) = LiveGraph::open(&dir, seed, FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep.checkpoint, "prev");
        assert!(!rep.warnings.is_empty());
        assert_eq!(save_to_string(&live2.snapshot()).unwrap(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem
    fn torn_wal_tail_truncates_to_durable_prefix() {
        let dir = std::env::temp_dir().join(format!("gsql-wal-tt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = sales_graph();
        let (live, _) = LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        live.commit(&mk_ops(&live.snapshot(), 1)).unwrap();
        let durable = save_to_string(&live.snapshot()).unwrap();
        live.commit(&mk_ops(&live.snapshot(), 1)).unwrap();
        drop(live);

        // Chop 3 bytes off the log tail: the second frame is torn.
        let wal = dir.join(WAL_FILE);
        let buf = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &buf[..buf.len() - 3]).unwrap();
        let (live2, rep) = LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep.frames_replayed, 1);
        assert!(rep.truncated_bytes > 0);
        assert_eq!(save_to_string(&live2.snapshot()).unwrap(), durable);
        drop(live2);
        // The truncated tail is gone from disk too: a third open replays
        // the same single frame with no further warnings.
        let (_, rep3) = LiveGraph::open(&dir, seed, FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep3.frames_replayed, 1);
        assert!(rep3.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_commit_publishes_snapshots() {
        let live = LiveGraph::in_memory(sales_graph());
        let before = live.snapshot();
        let ops = mk_ops(&before, 2);
        let (summary, seq) = live.commit(&ops).unwrap();
        assert_eq!(summary.inserted_vertices, 2);
        assert_eq!(seq, 1);
        let after = live.snapshot();
        assert_eq!(after.vertex_count(), before.vertex_count() + 2);
        // The pinned pre-commit snapshot is untouched.
        assert_eq!(before.vertex_count() + 2, after.vertex_count());
    }

    #[test]
    fn commit_checked_rejects_stale_pins() {
        let live = LiveGraph::in_memory(sales_graph());
        let (snap, pinned) = live.snapshot_pinned();
        assert_eq!(pinned, 0);
        let ops = mk_ops(&snap, 1);
        // A racing writer lands first.
        live.commit(&ops).unwrap();
        // The batch built against the pinned snapshot must be rejected —
        // its ids were resolved against seq 0, not seq 1.
        match live.commit_checked(&ops, Some(pinned)) {
            Err(CommitError::Conflict { pinned: 0, committed: 1 }) => {}
            other => panic!("expected Conflict, got {other:?}"),
        }
        // The rejection published nothing.
        let (_, seq) = live.snapshot_pinned();
        assert_eq!(seq, 1);
        // A fresh pin commits fine.
        let (snap2, pinned2) = live.snapshot_pinned();
        live.commit_checked(&mk_ops(&snap2, 1), Some(pinned2)).unwrap();
        assert_eq!(live.snapshot_pinned().1, 2);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem
    fn orphan_wal_without_checkpoint_is_a_recovery_error() {
        let dir = std::env::temp_dir().join(format!("gsql-wal-orphan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = sales_graph();
        let (live, _) = LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0).unwrap();
        live.commit(&mk_ops(&live.snapshot(), 1)).unwrap();
        drop(live);

        // Lose both checkpoints but keep the WAL: its frames were
        // recorded against a base we no longer have.
        std::fs::remove_file(dir.join(CKPT_CUR)).unwrap();
        assert!(!dir.join(CKPT_PREV).exists());
        match LiveGraph::open(&dir, seed.clone(), FlushPolicy::Always, 0) {
            Err(RecoveryError::Checkpoint(msg)) => assert!(msg.contains("orphan")),
            other => panic!("expected Checkpoint error, got {:?}", other.map(|(_, r)| r)),
        }

        // An empty wal.log is fine: that's a genuinely fresh store.
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        let (_, rep) = LiveGraph::open(&dir, seed, FlushPolicy::Always, 0).unwrap();
        assert_eq!(rep.checkpoint, "fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real filesystem + /dev/full
    fn failed_append_poisons_the_writer() {
        // /dev/full accepts the open but fails every write with ENOSPC.
        let dev_full = Path::new("/dev/full");
        if !dev_full.exists() {
            return; // non-Linux host: nothing to exercise
        }
        let g = sales_graph();
        let ops = mk_ops(&g, 1);
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(dev_full, FlushPolicy::Always, stats).unwrap();
        let first = w.append(1, &ops).unwrap_err();
        assert!(!first.to_string().contains("poisoned"));
        // A partial frame may be on disk: the writer must refuse further
        // appends (a later success would land after the garbage and be
        // silently dropped by recovery) until reopened.
        let second = w.append(2, &ops).unwrap_err();
        assert!(second.to_string().contains("poisoned"), "{second}");
        assert!(w.sync().unwrap_err().to_string().contains("poisoned"));
    }

    #[test]
    fn flush_policy_parsing() {
        assert_eq!(FlushPolicy::parse("always"), Some(FlushPolicy::Always));
        assert_eq!(FlushPolicy::parse("never"), Some(FlushPolicy::OnFlushOnly));
        assert_eq!(FlushPolicy::parse("every=8"), Some(FlushPolicy::EveryN(8)));
        assert_eq!(FlushPolicy::parse("4"), Some(FlushPolicy::EveryN(4)));
        assert_eq!(FlushPolicy::parse("every=0"), None);
        assert_eq!(FlushPolicy::parse("sometimes"), None);
    }
}
