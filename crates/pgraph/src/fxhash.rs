//! A minimal FxHash-style hasher.
//!
//! The default `std` hasher (SipHash 1-3) is robust against HashDoS but
//! slow for the short integer keys that dominate graph workloads. This is
//! the rustc `FxHasher` algorithm re-implemented locally so the workspace
//! stays within its approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher suitable for in-process hash maps keyed
/// by small integers or short byte strings.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_is_length_sensitive() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[0, 0]);
        b.write(&[0, 0, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.len(), 2);
    }
}
