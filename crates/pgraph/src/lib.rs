//! # pgraph — property-graph storage substrate
//!
//! An in-memory property graph supporting **mixed directed and undirected
//! edges**, the data model required by the paper *Aggregation Support for
//! Modern Graph Analytics in TigerGraph* (SIGMOD 2020). The upper layers
//! (`darpe`, `accum`, `gsql-core`) are built on top of this crate.
//!
//! Contents:
//!
//! * [`value`] — the dynamically-typed attribute [`value::Value`]
//!   with total ordering and hashing (usable as grouping keys),
//! * [`schema`] — vertex/edge type definitions with typed attributes,
//! * [`graph`] — columnar vertex/edge storage plus per-vertex adjacency
//!   grouped by `(edge type, direction)`,
//! * [`bigcount`] — arbitrary-precision unsigned counters for path
//!   multiplicities (the experiments count up to `2^30` paths and the
//!   engine must not overflow on adversarial inputs),
//! * [`fxhash`] — a small FxHash-style hasher so hot hash maps do not pay
//!   for SipHash,
//! * [`generators`] — synthetic graphs used across tests and benchmarks
//!   (diamond chain, cycles, grids, Erdős–Rényi, Barabási–Albert, the
//!   paper's SalesGraph and LinkedIn examples),
//! * [`algo`] — native reference implementations (BFS shortest-path
//!   counting, PageRank, WCC, SSSP, triangles) used to cross-validate the
//!   GSQL interpreter,
//! * [`loader`] — a plain-text serialization format for graphs,
//! * [`shard`] — vertex-partitioned per-shard CSR segments
//!   ([`shard::ShardedGraph`]) backing the scatter-gather executor.
//!
//! # Example
//!
//! ```
//! use pgraph::generators::diamond_chain;
//! use pgraph::bigcount::BigCount;
//!
//! // The paper's Example 11 gadget: 2^k shortest paths per k diamonds,
//! // counted in polynomial time without enumeration.
//! let (graph, spine) = diamond_chain(100);
//! let (len, count) =
//!     pgraph::algo::count_shortest_paths(&graph, spine[0], spine[100]).unwrap();
//! assert_eq!(len, 200);
//! assert_eq!(count, BigCount::pow2(100));
//! ```

pub mod algo;
pub mod bigcount;
pub mod datetime;
pub mod fxhash;
pub mod generators;
pub mod graph;
pub mod loader;
pub mod mutate;
pub mod schema;
pub mod shard;
pub mod value;
pub mod wal;

pub use bigcount::BigCount;
pub use graph::{Dir, EdgeId, Graph, GraphBuilder, VertexId};
pub use shard::{ShardPolicy, ShardSpec, ShardedGraph};
pub use mutate::{BatchSummary, MutationOp};
pub use wal::{CommitError, FlushPolicy, LiveGraph, RecoveryError, RecoveryReport};
pub use schema::{AttrDef, ETypeId, EdgeTypeDef, Schema, VTypeId, VertexTypeDef};
pub use value::{Value, ValueType};
