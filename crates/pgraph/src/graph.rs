//! In-memory property graph storage.
//!
//! Vertices and edges carry typed attribute rows. Adjacency is stored in
//! **compressed sparse row** (CSR) form: one flat `Vec<AdjEntry>` shared
//! by all vertices, a per-vertex offset array, and a per-`(vertex, edge
//! type)` offset array so typed traversal and degree queries are slice
//! lookups instead of filtered scans. Within a vertex's CSR range entries
//! are grouped by edge type and, inside each type group, ordered
//! `Out < Und < In` (stable on insertion order), which is what lets
//! `outdegree`/`indegree` answer with a binary partition point.
//!
//! Mutation stays cheap: `add_vertex`/`add_edge` append to a small
//! per-vertex *overlay* that readers transparently chain after the CSR
//! range. [`Graph::finalize`] (called by [`GraphBuilder::build`], the
//! loaders and the generators) folds the overlay back into the flat
//! arrays, so steady-state traversal touches only contiguous memory.

use crate::schema::{ETypeId, Schema, SchemaError, VTypeId};
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// Identifier of a vertex (dense, global across vertex types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of an edge (dense, global across edge types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// The direction in which an adjacency entry crosses its edge, viewed from
/// the owning vertex:
///
/// * `Out` — a directed edge leaving the vertex (matches `E>`),
/// * `In`  — a directed edge entering the vertex (matches `<E`),
/// * `Und` — an undirected edge incident to the vertex (matches `E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    Out,
    In,
    Und,
}

/// CSR intra-group ordering rank: `Out < Und < In`, so the out-going
/// prefix (`dir != In`) and in-coming suffix (`dir != Out`) of a type
/// group are both contiguous.
#[inline]
fn dir_rank(d: Dir) -> u8 {
    match d {
        Dir::Out => 0,
        Dir::Und => 1,
        Dir::In => 2,
    }
}

/// One adjacency record: crossing `edge` from the owning vertex reaches
/// `other`, traversing in direction `dir`, and the edge has type `etype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    pub etype: ETypeId,
    pub dir: Dir,
    pub edge: EdgeId,
    pub other: VertexId,
}

#[derive(Debug, Clone)]
struct VertexData {
    vtype: VTypeId,
    attrs: Box<[Value]>,
}

#[derive(Debug, Clone)]
struct EdgeData {
    etype: ETypeId,
    src: VertexId,
    dst: VertexId,
    attrs: Box<[Value]>,
}

/// Errors raised by graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    Schema(SchemaError),
    BadVertexId(VertexId),
    BadEdgeId(EdgeId),
    AttrArity { expected: usize, got: usize },
    EndpointType { edge_type: String, endpoint: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Schema(e) => write!(f, "{e}"),
            GraphError::BadVertexId(v) => write!(f, "vertex id {} out of range", v.0),
            GraphError::BadEdgeId(e) => write!(f, "edge id {} out of range", e.0),
            GraphError::AttrArity { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            GraphError::EndpointType { edge_type, endpoint } => {
                write!(f, "edge type `{edge_type}` does not allow endpoint type `{endpoint}`")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<SchemaError> for GraphError {
    fn from(e: SchemaError) -> Self {
        GraphError::Schema(e)
    }
}

/// The finalized flat adjacency arrays. `offsets` covers the vertices
/// that existed at the last [`Graph::finalize`]; vertices added since
/// live entirely in the overlay.
#[derive(Debug, Clone, Default)]
struct Csr {
    /// All adjacency entries, grouped by vertex, then edge type, then
    /// [`dir_rank`], stable on edge-insertion order.
    adj: Vec<AdjEntry>,
    /// `offsets[v]..offsets[v + 1]` is vertex `v`'s slice of `adj`.
    /// Length `covered + 1` (empty when never finalized).
    offsets: Vec<u32>,
    /// `type_offsets[v * ntypes + t]` is the start of vertex `v`'s
    /// type-`t` group; the group ends at the next element. Length
    /// `covered * ntypes + 1` (empty when never finalized).
    type_offsets: Vec<u32>,
}

impl Csr {
    /// Number of vertices the finalized arrays cover.
    fn covered(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Vertex `v`'s finalized adjacency slice (empty if not covered).
    fn vertex_slice(&self, v: usize) -> &[AdjEntry] {
        if v + 1 < self.offsets.len() {
            &self.adj[self.offsets[v] as usize..self.offsets[v + 1] as usize]
        } else {
            &[]
        }
    }

    /// Vertex `v`'s finalized type-`t` group (empty if not covered).
    fn type_slice(&self, v: usize, t: usize, ntypes: usize) -> &[AdjEntry] {
        let i = v * ntypes + t;
        if ntypes > 0 && i + 1 < self.type_offsets.len() {
            &self.adj[self.type_offsets[i] as usize..self.type_offsets[i + 1] as usize]
        } else {
            &[]
        }
    }
}

/// A borrowed view of one vertex's adjacency: the finalized CSR slice
/// chained with the mutation overlay's tail. Cheap to copy; iterates as
/// `&AdjEntry` and supports positional indexing so enumeration kernels
/// can suspend/resume at an edge offset.
#[derive(Clone, Copy)]
pub struct AdjView<'a> {
    base: &'a [AdjEntry],
    tail: &'a [AdjEntry],
}

/// Iterator over an [`AdjView`].
pub type AdjIter<'a> =
    std::iter::Chain<std::slice::Iter<'a, AdjEntry>, std::slice::Iter<'a, AdjEntry>>;

impl<'a> AdjView<'a> {
    /// A view over a single contiguous slice (no overlay tail) — the
    /// shape a [`crate::shard::ShardedGraph`] segment serves, where each
    /// owned vertex's CSR slice and overlay tail were concatenated into
    /// one run at build time.
    #[inline]
    pub fn from_slice(base: &'a [AdjEntry]) -> AdjView<'a> {
        AdjView { base, tail: &[] }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.tail.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.tail.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> Option<&'a AdjEntry> {
        if i < self.base.len() {
            self.base.get(i)
        } else {
            self.tail.get(i - self.base.len())
        }
    }

    #[inline]
    pub fn iter(&self) -> AdjIter<'a> {
        self.base.iter().chain(self.tail.iter())
    }

    /// Iterates entries starting at position `start` (O(1) setup — used
    /// by the DFS kernels to resume a partially-walked vertex).
    #[inline]
    pub fn iter_from(&self, start: usize) -> AdjIter<'a> {
        if start <= self.base.len() {
            self.base[start..].iter().chain(self.tail.iter())
        } else {
            let t = (start - self.base.len()).min(self.tail.len());
            self.base[self.base.len()..].iter().chain(self.tail[t..].iter())
        }
    }

    pub fn to_vec(&self) -> Vec<AdjEntry> {
        self.iter().copied().collect()
    }
}

impl Index<usize> for AdjView<'_> {
    type Output = AdjEntry;

    #[inline]
    fn index(&self, i: usize) -> &AdjEntry {
        self.get(i).expect("adjacency index out of range")
    }
}

impl<'a> IntoIterator for AdjView<'a> {
    type Item = &'a AdjEntry;
    type IntoIter = AdjIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &AdjView<'a> {
    type Item = &'a AdjEntry;
    type IntoIter = AdjIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Log₂ degree-histogram buckets: bucket `i` counts vertices whose total
/// degree has bit length `i` (bucket 0 = isolated vertices, bucket 1 =
/// degree 1, bucket 2 = degrees 2–3, ...). 33 buckets cover any `u32`
/// entry count.
pub const DEGREE_BUCKETS: usize = 33;

/// Cardinality and degree statistics collected by [`Graph::finalize`],
/// consumed by the query planner's cost model.
///
/// All numbers describe the finalized topology (the CSR arrays); edges
/// added to the mutation overlay afterwards are not counted until the
/// next finalize. Everything is deterministic: the same graph always
/// produces the same statistics, which is what keeps cost-based plans —
/// and therefore query results — reproducible.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Identity of the finalized topology: a process-unique, monotone
    /// token stamped by each [`Graph::finalize`] call (0 = never
    /// finalized). Plan caches key on this to detect snapshot changes.
    epoch: u64,
    /// Vertex count per [`VTypeId`].
    vertex_counts: Vec<u64>,
    /// Edge count per [`ETypeId`].
    edge_counts: Vec<u64>,
    /// Out-going endpoint count per `(source vertex type, edge type)`,
    /// flattened as `vtype * edge_type_count + etype`. Undirected edges
    /// count toward *both* endpoints' out and in tallies (they can be
    /// traversed either way).
    out_by_type: Vec<u64>,
    /// In-coming endpoint count per `(target vertex type, edge type)`.
    in_by_type: Vec<u64>,
    /// Number of edge types (the stride of the flattened tables).
    etype_stride: usize,
    /// Log₂ histogram of total vertex degree (see [`DEGREE_BUCKETS`]).
    degree_log2: Vec<u64>,
}

impl GraphStats {
    /// The finalize token (0 = never finalized).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total vertices across all types.
    pub fn total_vertices(&self) -> u64 {
        self.vertex_counts.iter().sum()
    }

    /// Total edges across all types.
    pub fn total_edges(&self) -> u64 {
        self.edge_counts.iter().sum()
    }

    /// Vertices of type `vt`.
    pub fn vertex_count(&self, vt: VTypeId) -> u64 {
        self.vertex_counts.get(vt.0 as usize).copied().unwrap_or(0)
    }

    /// Edges of type `et`.
    pub fn edge_count(&self, et: ETypeId) -> u64 {
        self.edge_counts.get(et.0 as usize).copied().unwrap_or(0)
    }

    fn by_type(&self, table: &[u64], vt: VTypeId, et: ETypeId) -> u64 {
        if self.etype_stride == 0 {
            return 0;
        }
        table
            .get(vt.0 as usize * self.etype_stride + et.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Average out-degree (directed out + undirected incident) over
    /// type-`et` edges for a vertex of type `vt`.
    pub fn avg_out_degree(&self, vt: VTypeId, et: ETypeId) -> f64 {
        let n = self.vertex_count(vt);
        if n == 0 {
            return 0.0;
        }
        self.by_type(&self.out_by_type, vt, et) as f64 / n as f64
    }

    /// Average in-degree (directed in + undirected incident) over
    /// type-`et` edges for a vertex of type `vt`.
    pub fn avg_in_degree(&self, vt: VTypeId, et: ETypeId) -> f64 {
        let n = self.vertex_count(vt);
        if n == 0 {
            return 0.0;
        }
        self.by_type(&self.in_by_type, vt, et) as f64 / n as f64
    }

    /// Log₂ histogram of total vertex degree; `hist[i]` counts vertices
    /// whose degree has bit length `i`.
    pub fn degree_histogram(&self) -> &[u64] {
        &self.degree_log2
    }
}

/// Process-global source of finalize tokens. Starts at 1 so epoch 0
/// always means "never finalized".
static FINALIZE_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The property graph: schema + vertex/edge stores + CSR adjacency.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    schema: Schema,
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    by_type: Vec<Vec<VertexId>>,
    csr: Csr,
    /// Adjacency entries added since the last finalize, per vertex
    /// (insertion order; readers chain these after the CSR slice).
    overlay: Vec<Vec<AdjEntry>>,
    /// Total entries across `overlay` (0 ⇔ fully finalized).
    overlay_entries: usize,
    /// Planner statistics from the last [`Graph::finalize`].
    stats: GraphStats,
}

impl Graph {
    /// Creates an empty graph over `schema`.
    pub fn new(schema: Schema) -> Self {
        let nt = schema.vertex_type_count();
        Graph {
            schema,
            vertices: Vec::new(),
            edges: Vec::new(),
            by_type: vec![Vec::new(); nt],
            csr: Csr::default(),
            overlay: Vec::new(),
            overlay_entries: 0,
            stats: GraphStats::default(),
        }
    }

    /// Planner statistics collected by the last [`Graph::finalize`]
    /// (default/empty if the graph was never finalized).
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether every adjacency entry lives in the flat CSR arrays (no
    /// pending mutation overlay).
    pub fn is_finalized(&self) -> bool {
        self.overlay_entries == 0 && self.csr.covered() == self.vertices.len()
    }

    /// Number of adjacency entries currently living in the mutation
    /// overlay (0 right after [`Graph::finalize`]). Together with the
    /// stats epoch and the vertex/edge counts this fingerprints the
    /// adjacency structure — [`crate::shard::ShardedGraph::matches`]
    /// uses it to detect staleness.
    pub fn overlay_entry_count(&self) -> usize {
        self.overlay_entries
    }

    /// Adds a vertex of type `vt`. `attrs` must match the declared arity;
    /// missing trailing values are *not* defaulted — use
    /// [`GraphBuilder`] for name-based convenience.
    pub fn add_vertex(&mut self, vt: VTypeId, attrs: Vec<Value>) -> Result<VertexId, GraphError> {
        let def = self.schema.vertex_type(vt);
        if attrs.len() != def.attrs.len() {
            return Err(GraphError::AttrArity {
                expected: def.attrs.len(),
                got: attrs.len(),
            });
        }
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(VertexData {
            vtype: vt,
            attrs: attrs.into_boxed_slice(),
        });
        self.by_type[vt.0 as usize].push(id);
        self.overlay.push(Vec::new());
        Ok(id)
    }

    /// Adds an edge of type `et` from `src` to `dst`. For undirected edge
    /// types the (src, dst) order is storage-only; traversal treats both
    /// endpoints symmetrically. The new adjacency entries land in the
    /// mutation overlay until the next [`Graph::finalize`].
    pub fn add_edge(
        &mut self,
        et: ETypeId,
        src: VertexId,
        dst: VertexId,
        attrs: Vec<Value>,
    ) -> Result<EdgeId, GraphError> {
        if src.0 as usize >= self.vertices.len() {
            return Err(GraphError::BadVertexId(src));
        }
        if dst.0 as usize >= self.vertices.len() {
            return Err(GraphError::BadVertexId(dst));
        }
        let def = self.schema.edge_type(et);
        if attrs.len() != def.attrs.len() {
            return Err(GraphError::AttrArity {
                expected: def.attrs.len(),
                got: attrs.len(),
            });
        }
        let src_t = self.vertices[src.0 as usize].vtype;
        let dst_t = self.vertices[dst.0 as usize].vtype;
        if !def.from_types.is_empty() && !def.from_types.contains(&src_t) {
            return Err(GraphError::EndpointType {
                edge_type: def.name.clone(),
                endpoint: self.schema.vertex_type(src_t).name.clone(),
            });
        }
        if !def.to_types.is_empty() && !def.to_types.contains(&dst_t) {
            return Err(GraphError::EndpointType {
                edge_type: def.name.clone(),
                endpoint: self.schema.vertex_type(dst_t).name.clone(),
            });
        }
        let directed = def.directed;
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { etype: et, src, dst, attrs: attrs.into_boxed_slice() });
        if directed {
            self.overlay[src.0 as usize]
                .push(AdjEntry { etype: et, dir: Dir::Out, edge: id, other: dst });
            self.overlay[dst.0 as usize]
                .push(AdjEntry { etype: et, dir: Dir::In, edge: id, other: src });
            self.overlay_entries += 2;
        } else {
            self.overlay[src.0 as usize]
                .push(AdjEntry { etype: et, dir: Dir::Und, edge: id, other: dst });
            self.overlay_entries += 1;
            if src != dst {
                self.overlay[dst.0 as usize]
                    .push(AdjEntry { etype: et, dir: Dir::Und, edge: id, other: src });
                self.overlay_entries += 1;
            }
        }
        Ok(id)
    }

    /// Rebuilds the flat CSR arrays from the edge store and clears the
    /// mutation overlay. O(V + E); idempotent. Loaders, generators and
    /// [`GraphBuilder::build`] call this so query execution sees flat,
    /// type-grouped adjacency.
    pub fn finalize(&mut self) {
        let nv = self.vertices.len();
        let nt = self.schema.edge_type_count();
        let mut counts = vec![0u32; nv + 1];
        let emit_counts = |e: &EdgeData, counts: &mut Vec<u32>| {
            let directed = self.schema.edge_type(e.etype).directed;
            counts[e.src.0 as usize + 1] += 1;
            if directed || e.src != e.dst {
                counts[e.dst.0 as usize + 1] += 1;
            }
        };
        for e in &self.edges {
            emit_counts(e, &mut counts);
        }
        // Prefix-sum into offsets.
        for i in 0..nv {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let total = *offsets.last().unwrap_or(&0) as usize;
        let mut adj = vec![
            AdjEntry { etype: ETypeId(0), dir: Dir::Out, edge: EdgeId(0), other: VertexId(0) };
            total
        ];
        let mut cursor: Vec<u32> = offsets[..nv].to_vec();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            let directed = self.schema.edge_type(e.etype).directed;
            let mut place = |v: VertexId, entry: AdjEntry, cursor: &mut Vec<u32>| {
                let c = &mut cursor[v.0 as usize];
                adj[*c as usize] = entry;
                *c += 1;
            };
            if directed {
                place(
                    e.src,
                    AdjEntry { etype: e.etype, dir: Dir::Out, edge: id, other: e.dst },
                    &mut cursor,
                );
                place(
                    e.dst,
                    AdjEntry { etype: e.etype, dir: Dir::In, edge: id, other: e.src },
                    &mut cursor,
                );
            } else {
                place(
                    e.src,
                    AdjEntry { etype: e.etype, dir: Dir::Und, edge: id, other: e.dst },
                    &mut cursor,
                );
                if e.src != e.dst {
                    place(
                        e.dst,
                        AdjEntry { etype: e.etype, dir: Dir::Und, edge: id, other: e.src },
                        &mut cursor,
                    );
                }
            }
        }
        // Group each vertex's slice by (edge type, direction rank),
        // stable on insertion order.
        for v in 0..nv {
            adj[offsets[v] as usize..offsets[v + 1] as usize]
                .sort_by_key(|a| (a.etype.0, dir_rank(a.dir)));
        }
        // Per-(vertex, type) group boundaries.
        let mut type_offsets = vec![0u32; nv * nt + 1];
        for v in 0..nv {
            let end = offsets[v + 1] as usize;
            let mut cur = offsets[v] as usize;
            for t in 0..nt {
                type_offsets[v * nt + t] = cur as u32;
                while cur < end && adj[cur].etype.0 as usize == t {
                    cur += 1;
                }
            }
            debug_assert_eq!(cur, end, "entry with out-of-range edge type");
        }
        if let Some(last) = type_offsets.last_mut() {
            *last = total as u32;
        }
        self.csr = Csr { adj, offsets, type_offsets };
        for o in &mut self.overlay {
            o.clear();
        }
        self.overlay.resize(nv, Vec::new());
        self.overlay_entries = 0;
        self.collect_stats();
    }

    /// Rebuilds [`GraphStats`] from the vertex/edge stores. One pass over
    /// the edges plus one over the CSR offsets; called by
    /// [`Graph::finalize`] so statistics always describe the finalized
    /// topology.
    fn collect_stats(&mut self) {
        let nvt = self.schema.vertex_type_count();
        let net = self.schema.edge_type_count();
        let mut s = GraphStats {
            epoch: FINALIZE_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            vertex_counts: self.by_type.iter().map(|v| v.len() as u64).collect(),
            edge_counts: vec![0; net],
            out_by_type: vec![0; nvt * net],
            in_by_type: vec![0; nvt * net],
            etype_stride: net,
            degree_log2: vec![0; DEGREE_BUCKETS],
        };
        for e in &self.edges {
            let et = e.etype.0 as usize;
            s.edge_counts[et] += 1;
            let src_t = self.vertices[e.src.0 as usize].vtype.0 as usize;
            let dst_t = self.vertices[e.dst.0 as usize].vtype.0 as usize;
            if self.schema.edge_type(e.etype).directed {
                s.out_by_type[src_t * net + et] += 1;
                s.in_by_type[dst_t * net + et] += 1;
            } else {
                // Undirected edges are traversable from both endpoints,
                // so they contribute to out *and* in on both sides —
                // matching what `outdegree`/`indegree` report.
                s.out_by_type[src_t * net + et] += 1;
                s.in_by_type[src_t * net + et] += 1;
                if e.src != e.dst {
                    s.out_by_type[dst_t * net + et] += 1;
                    s.in_by_type[dst_t * net + et] += 1;
                }
            }
        }
        for v in 0..self.vertices.len() {
            let deg = (self.csr.offsets[v + 1] - self.csr.offsets[v]) as u64;
            let bucket = (64 - deg.leading_zeros() as usize).min(DEGREE_BUCKETS - 1);
            s.degree_log2[bucket] += 1;
        }
        self.stats = s;
    }

    /// The type of vertex `v`.
    pub fn vertex_type_of(&self, v: VertexId) -> VTypeId {
        self.vertices[v.0 as usize].vtype
    }

    /// The type of edge `e`.
    pub fn edge_type_of(&self, e: EdgeId) -> ETypeId {
        self.edges[e.0 as usize].etype
    }

    /// Source and target of edge `e` as stored.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let d = &self.edges[e.0 as usize];
        (d.src, d.dst)
    }

    /// Vertex attribute by column index.
    pub fn vertex_attr(&self, v: VertexId, idx: usize) -> &Value {
        &self.vertices[v.0 as usize].attrs[idx]
    }

    /// Vertex attribute by name (schema lookup each call; the evaluator
    /// caches indices instead).
    pub fn vertex_attr_by_name(&self, v: VertexId, name: &str) -> Option<&Value> {
        let vt = self.vertex_type_of(v);
        let idx = self.schema.vertex_attr_index(vt, name)?;
        Some(self.vertex_attr(v, idx))
    }

    /// Edge attribute by column index.
    pub fn edge_attr(&self, e: EdgeId, idx: usize) -> &Value {
        &self.edges[e.0 as usize].attrs[idx]
    }

    /// Edge attribute by name.
    pub fn edge_attr_by_name(&self, e: EdgeId, name: &str) -> Option<&Value> {
        let et = self.edge_type_of(e);
        let idx = self.schema.edge_attr_index(et, name)?;
        Some(self.edge_attr(e, idx))
    }

    /// Overwrites a vertex attribute (used by loaders and mutation tests).
    pub fn set_vertex_attr(&mut self, v: VertexId, idx: usize, value: Value) {
        self.vertices[v.0 as usize].attrs[idx] = value;
    }

    /// Overwrites an edge attribute (the edge twin of
    /// [`Graph::set_vertex_attr`], used by the mutation batch applier).
    pub fn set_edge_attr(&mut self, e: EdgeId, idx: usize, value: Value) {
        self.edges[e.0 as usize].attrs[idx] = value;
    }

    /// All adjacency entries of `v`: the finalized CSR slice chained with
    /// any overlay tail. On a finalized graph the tail is empty and
    /// iteration is a single contiguous scan.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> AdjView<'_> {
        let i = v.0 as usize;
        AdjView {
            base: self.csr.vertex_slice(i),
            tail: self.overlay.get(i).map(|o| o.as_slice()).unwrap_or(&[]),
        }
    }

    /// Adjacency entries of `v` with edge type `etype` — a direct slice
    /// lookup on a finalized graph (plus a filtered overlay tail
    /// otherwise).
    pub fn adjacency_of_type(
        &self,
        v: VertexId,
        etype: ETypeId,
    ) -> impl Iterator<Item = &AdjEntry> {
        let i = v.0 as usize;
        let nt = self.schema.edge_type_count();
        let base = self.csr.type_slice(i, etype.0 as usize, nt);
        let tail = self.overlay.get(i).map(|o| o.as_slice()).unwrap_or(&[]);
        base.iter().chain(tail.iter().filter(move |a| a.etype == etype))
    }

    /// All vertices of type `vt`, in insertion order.
    pub fn vertices_of_type(&self, vt: VTypeId) -> &[VertexId] {
        &self.by_type[vt.0 as usize]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Count of entries in a dir-ranked group slice whose rank is below
    /// `below` (the groups are sorted by [`dir_rank`], so this is a
    /// binary partition point, not a scan).
    fn rank_prefix(group: &[AdjEntry], below: u8) -> usize {
        group.partition_point(|a| dir_rank(a.dir) < below)
    }

    /// GSQL's `v.outdegree()`: number of edges leaving `v` (directed out
    /// plus undirected incident). With `etype`, restricted to that type.
    pub fn outdegree(&self, v: VertexId, etype: Option<ETypeId>) -> usize {
        let i = v.0 as usize;
        let nt = self.schema.edge_type_count();
        // CSR part: per type group, `Out` + `Und` entries form the prefix
        // before the first `In` entry.
        let base: usize = match etype {
            Some(t) => Self::rank_prefix(self.csr.type_slice(i, t.0 as usize, nt), 2),
            None => (0..nt)
                .map(|t| Self::rank_prefix(self.csr.type_slice(i, t, nt), 2))
                .sum(),
        };
        let tail = self
            .overlay
            .get(i)
            .map(|o| {
                o.iter()
                    .filter(|a| a.dir != Dir::In && etype.is_none_or(|t| a.etype == t))
                    .count()
            })
            .unwrap_or(0);
        base + tail
    }

    /// Number of edges entering `v` (directed in plus undirected incident).
    pub fn indegree(&self, v: VertexId, etype: Option<ETypeId>) -> usize {
        let i = v.0 as usize;
        let nt = self.schema.edge_type_count();
        // CSR part: `Und` + `In` entries form the suffix at and after the
        // first non-`Out` entry.
        let base: usize = match etype {
            Some(t) => {
                let g = self.csr.type_slice(i, t.0 as usize, nt);
                g.len() - Self::rank_prefix(g, 1)
            }
            None => (0..nt)
                .map(|t| {
                    let g = self.csr.type_slice(i, t, nt);
                    g.len() - Self::rank_prefix(g, 1)
                })
                .sum(),
        };
        let tail = self
            .overlay
            .get(i)
            .map(|o| {
                o.iter()
                    .filter(|a| a.dir != Dir::Out && etype.is_none_or(|t| a.etype == t))
                    .count()
            })
            .unwrap_or(0);
        base + tail
    }

    /// Total degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency(v).len()
    }
}

/// A convenience layer over [`Graph`] resolving type and attribute names
/// once and defaulting unspecified attributes — the ergonomic way to build
/// example graphs.
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    pub fn new(schema: Schema) -> Self {
        GraphBuilder { graph: Graph::new(schema) }
    }

    /// Adds a vertex by type name with `(attr name, value)` pairs; omitted
    /// attributes take their type default.
    pub fn vertex(
        &mut self,
        type_name: &str,
        attrs: &[(&str, Value)],
    ) -> Result<VertexId, GraphError> {
        let vt = self
            .graph
            .schema
            .vertex_type_id(type_name)
            .ok_or_else(|| SchemaError::UnknownVertexType(type_name.to_string()))?;
        let def = self.graph.schema.vertex_type(vt);
        let mut row: Vec<Value> = def.attrs.iter().map(|a| a.ty.default_value()).collect();
        for (name, value) in attrs {
            let idx = self
                .graph
                .schema
                .vertex_attr_index(vt, name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    owner: type_name.to_string(),
                    attr: name.to_string(),
                })?;
            row[idx] = value.clone();
        }
        self.graph.add_vertex(vt, row)
    }

    /// Adds an edge by type name with named attributes.
    pub fn edge(
        &mut self,
        type_name: &str,
        src: VertexId,
        dst: VertexId,
        attrs: &[(&str, Value)],
    ) -> Result<EdgeId, GraphError> {
        let et = self
            .graph
            .schema
            .edge_type_id(type_name)
            .ok_or_else(|| SchemaError::UnknownEdgeType(type_name.to_string()))?;
        let def = self.graph.schema.edge_type(et);
        let mut row: Vec<Value> = def.attrs.iter().map(|a| a.ty.default_value()).collect();
        for (name, value) in attrs {
            let idx = self
                .graph
                .schema
                .edge_attr_index(et, name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    owner: type_name.to_string(),
                    attr: name.to_string(),
                })?;
            row[idx] = value.clone();
        }
        self.graph.add_edge(et, src, dst, row)
    }

    /// Finishes building: folds the mutation overlay into the flat CSR
    /// arrays and returns the finalized graph.
    pub fn build(mut self) -> Graph {
        self.graph.finalize();
        self.graph
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;
    use crate::value::ValueType;

    fn mixed_schema() -> Schema {
        let mut s = Schema::new();
        s.add_vertex_type("Person", vec![AttrDef::new("name", ValueType::Str)])
            .unwrap();
        s.add_edge_type("Follows", true, vec![]).unwrap();
        s.add_edge_type(
            "Knows",
            false,
            vec![AttrDef::new("since", ValueType::Int)],
        )
        .unwrap();
        s
    }

    #[test]
    fn directed_adjacency_both_sides() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Follows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        let e = g.add_edge(et, a, b, vec![]).unwrap();
        assert_eq!(
            g.adjacency(a).to_vec(),
            vec![AdjEntry { etype: et, dir: Dir::Out, edge: e, other: b }]
        );
        assert_eq!(
            g.adjacency(b).to_vec(),
            vec![AdjEntry { etype: et, dir: Dir::In, edge: e, other: a }]
        );
        assert_eq!(g.outdegree(a, None), 1);
        assert_eq!(g.outdegree(b, None), 0);
        assert_eq!(g.indegree(b, None), 1);
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        g.add_edge(et, a, b, vec![Value::Int(2016)]).unwrap();
        assert_eq!(g.adjacency(a)[0].dir, Dir::Und);
        assert_eq!(g.adjacency(b)[0].dir, Dir::Und);
        assert_eq!(g.adjacency(a)[0].other, b);
        assert_eq!(g.adjacency(b)[0].other, a);
        // Undirected edges count toward both out- and in-degree.
        assert_eq!(g.outdegree(a, None), 1);
        assert_eq!(g.indegree(a, None), 1);
    }

    #[test]
    fn undirected_self_loop_recorded_once() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        g.add_edge(et, a, a, vec![Value::Int(0)]).unwrap();
        assert_eq!(g.adjacency(a).len(), 1);
        g.finalize();
        assert_eq!(g.adjacency(a).len(), 1);
    }

    #[test]
    fn attribute_access() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("alice")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("bob")]).unwrap();
        let e = g.add_edge(et, a, b, vec![Value::Int(2016)]).unwrap();
        assert_eq!(g.vertex_attr_by_name(a, "name"), Some(&Value::from("alice")));
        assert_eq!(g.edge_attr_by_name(e, "since"), Some(&Value::Int(2016)));
        assert_eq!(g.vertex_attr_by_name(a, "nope"), None);
    }

    #[test]
    fn arity_and_id_errors() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Follows").unwrap();
        assert!(matches!(
            g.add_vertex(vt, vec![]),
            Err(GraphError::AttrArity { expected: 1, got: 0 })
        ));
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        assert!(matches!(
            g.add_edge(et, a, VertexId(99), vec![]),
            Err(GraphError::BadVertexId(_))
        ));
    }

    #[test]
    fn endpoint_constraints_enforced() {
        let mut s = Schema::new();
        let p = s.add_vertex_type("P", vec![]).unwrap();
        let q = s.add_vertex_type("Q", vec![]).unwrap();
        s.add_edge_type_between("PQ", true, vec![p], vec![q], vec![])
            .unwrap();
        let mut g = Graph::new(s);
        let et = g.schema().edge_type_id("PQ").unwrap();
        let vp = g.add_vertex(p, vec![]).unwrap();
        let vq = g.add_vertex(q, vec![]).unwrap();
        assert!(g.add_edge(et, vp, vq, vec![]).is_ok());
        assert!(matches!(
            g.add_edge(et, vq, vp, vec![]),
            Err(GraphError::EndpointType { .. })
        ));
    }

    #[test]
    fn builder_defaults_and_names() {
        let mut b = GraphBuilder::new(mixed_schema());
        let a = b.vertex("Person", &[("name", Value::from("a"))]).unwrap();
        let c = b.vertex("Person", &[]).unwrap();
        b.edge("Knows", a, c, &[("since", Value::Int(2020))]).unwrap();
        let g = b.build();
        assert!(g.is_finalized());
        assert_eq!(g.vertex_attr_by_name(c, "name"), Some(&Value::Str(String::new())));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn vertices_of_type_tracks_insertion() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        assert_eq!(g.vertices_of_type(vt), &[a, b]);
    }

    /// Reference adjacency model: the exact entries `add_edge` used to
    /// keep per vertex, in insertion order.
    fn naive_adjacency(g: &Graph) -> Vec<Vec<AdjEntry>> {
        let mut adj = vec![Vec::new(); g.vertex_count()];
        for e in g.edges() {
            let et = g.edge_type_of(e);
            let (src, dst) = g.edge_endpoints(e);
            if g.schema().edge_type(et).directed {
                adj[src.0 as usize].push(AdjEntry { etype: et, dir: Dir::Out, edge: e, other: dst });
                adj[dst.0 as usize].push(AdjEntry { etype: et, dir: Dir::In, edge: e, other: src });
            } else {
                adj[src.0 as usize].push(AdjEntry { etype: et, dir: Dir::Und, edge: e, other: dst });
                if src != dst {
                    adj[dst.0 as usize]
                        .push(AdjEntry { etype: et, dir: Dir::Und, edge: e, other: src });
                }
            }
        }
        adj
    }

    fn scrambled_graph() -> Graph {
        // Interleave edge types and directions so CSR grouping actually
        // has to reorder entries.
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let follows = g.schema().edge_type_id("Follows").unwrap();
        let knows = g.schema().edge_type_id("Knows").unwrap();
        let vs: Vec<VertexId> = (0..6)
            .map(|i| g.add_vertex(vt, vec![Value::from(format!("p{i}"))]).unwrap())
            .collect();
        for (i, j) in [(0, 1), (2, 0), (0, 3), (4, 0), (1, 2), (3, 4), (5, 0), (0, 5)] {
            g.add_edge(follows, vs[i], vs[j], vec![]).unwrap();
            g.add_edge(knows, vs[j], vs[i], vec![Value::Int(0)]).unwrap();
        }
        g
    }

    #[test]
    fn finalize_preserves_entry_sets_and_degrees() {
        let mut g = scrambled_graph();
        let naive = naive_adjacency(&g);
        // Pre-finalize: overlay order is exactly insertion order.
        for v in g.vertices() {
            assert_eq!(g.adjacency(v).to_vec(), naive[v.0 as usize]);
        }
        let degrees: Vec<(usize, usize, usize)> = g
            .vertices()
            .map(|v| (g.outdegree(v, None), g.indegree(v, None), g.degree(v)))
            .collect();
        g.finalize();
        assert!(g.is_finalized());
        for v in g.vertices() {
            // Same entries (as a set) after grouping.
            let mut got = g.adjacency(v).to_vec();
            let mut want = naive[v.0 as usize].clone();
            got.sort_by_key(|a| a.edge);
            want.sort_by_key(|a| a.edge);
            assert_eq!(got, want, "entries changed for {v:?}");
            // Grouped by (etype, dir rank), stable within groups.
            let keys: Vec<(u32, u8)> = g
                .adjacency(v)
                .iter()
                .map(|a| (a.etype.0, dir_rank(a.dir)))
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "CSR slice not grouped for {v:?}");
        }
        let after: Vec<(usize, usize, usize)> = g
            .vertices()
            .map(|v| (g.outdegree(v, None), g.indegree(v, None), g.degree(v)))
            .collect();
        assert_eq!(degrees, after);
    }

    #[test]
    fn typed_adjacency_is_exact() {
        let mut g = scrambled_graph();
        g.finalize();
        let follows = g.schema().edge_type_id("Follows").unwrap();
        let knows = g.schema().edge_type_id("Knows").unwrap();
        for v in g.vertices() {
            for et in [follows, knows] {
                let typed: Vec<AdjEntry> = g.adjacency_of_type(v, et).copied().collect();
                let filtered: Vec<AdjEntry> = g
                    .adjacency(v)
                    .iter()
                    .filter(|a| a.etype == et)
                    .copied()
                    .collect();
                assert_eq!(typed, filtered);
                assert_eq!(
                    g.outdegree(v, Some(et)),
                    filtered.iter().filter(|a| a.dir != Dir::In).count()
                );
                assert_eq!(
                    g.indegree(v, Some(et)),
                    filtered.iter().filter(|a| a.dir != Dir::Out).count()
                );
            }
        }
    }

    #[test]
    fn mutation_after_finalize_lands_in_overlay() {
        let mut g = scrambled_graph();
        g.finalize();
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let follows = g.schema().edge_type_id("Follows").unwrap();
        let nv = g.add_vertex(vt, vec![Value::from("late")]).unwrap();
        let v0 = VertexId(0);
        let before = g.adjacency(v0).len();
        let e = g.add_edge(follows, v0, nv, vec![]).unwrap();
        assert!(!g.is_finalized());
        // Readers see the new entry chained after the CSR slice.
        assert_eq!(g.adjacency(v0).len(), before + 1);
        assert_eq!(g.adjacency(v0)[before], AdjEntry {
            etype: follows,
            dir: Dir::Out,
            edge: e,
            other: nv
        });
        assert_eq!(g.adjacency(nv).to_vec(), vec![AdjEntry {
            etype: follows,
            dir: Dir::In,
            edge: e,
            other: v0
        }]);
        assert_eq!(g.outdegree(v0, Some(follows)), {
            let naive = naive_adjacency(&g);
            naive[0].iter().filter(|a| a.dir != Dir::In && a.etype == follows).count()
        });
        // Re-finalize folds it in.
        g.finalize();
        assert!(g.is_finalized());
        assert_eq!(g.adjacency(v0).len(), before + 1);
        assert_eq!(g.adjacency(nv).len(), 1);
    }

    #[test]
    fn finalize_collects_planner_stats() {
        let mut g = scrambled_graph();
        assert_eq!(g.stats().epoch(), 0, "unfinalized graph has no stats epoch");
        g.finalize();
        let first_epoch = g.stats().epoch();
        assert!(first_epoch > 0);
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let follows = g.schema().edge_type_id("Follows").unwrap();
        let knows = g.schema().edge_type_id("Knows").unwrap();
        assert_eq!(g.stats().vertex_count(vt), 6);
        assert_eq!(g.stats().total_vertices(), 6);
        assert_eq!(g.stats().edge_count(follows), 8);
        assert_eq!(g.stats().edge_count(knows), 8);
        assert_eq!(g.stats().total_edges(), 16);
        // Directed: 8 Follows edges over 6 Persons.
        let avg_out = g.stats().avg_out_degree(vt, follows);
        assert!((avg_out - 8.0 / 6.0).abs() < 1e-12, "avg_out {avg_out}");
        // Undirected Knows edges count from both endpoints.
        let avg_und = g.stats().avg_out_degree(vt, knows);
        assert!((avg_und - 16.0 / 6.0).abs() < 1e-12, "avg_und {avg_und}");
        assert_eq!(avg_und, g.stats().avg_in_degree(vt, knows));
        // Histogram sums to the vertex count and matches real degrees.
        assert_eq!(g.stats().degree_histogram().iter().sum::<u64>(), 6);
        let mut expect = vec![0u64; DEGREE_BUCKETS];
        for v in g.vertices() {
            let deg = g.degree(v) as u64;
            expect[(64 - deg.leading_zeros() as usize).min(DEGREE_BUCKETS - 1)] += 1;
        }
        assert_eq!(g.stats().degree_histogram(), &expect[..]);
        // Re-finalizing advances the epoch even if nothing changed.
        g.finalize();
        assert!(g.stats().epoch() > first_epoch);
        // Unknown ids degrade to zero instead of panicking.
        assert_eq!(g.stats().vertex_count(VTypeId(99)), 0);
        assert_eq!(g.stats().avg_out_degree(VTypeId(99), ETypeId(99)), 0.0);
    }

    #[test]
    fn adjview_indexing_and_iter_from() {
        let mut g = scrambled_graph();
        g.finalize();
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let follows = g.schema().edge_type_id("Follows").unwrap();
        let nv = g.add_vertex(vt, vec![Value::from("late")]).unwrap();
        g.add_edge(follows, VertexId(0), nv, vec![]).unwrap();
        let view = g.adjacency(VertexId(0));
        let all = view.to_vec();
        assert_eq!(view.len(), all.len());
        for i in 0..all.len() {
            assert_eq!(view[i], all[i]);
            let rest: Vec<AdjEntry> = view.iter_from(i).copied().collect();
            assert_eq!(rest, all[i..].to_vec());
        }
        assert_eq!(view.iter_from(all.len()).count(), 0);
        assert_eq!(view.iter_from(all.len() + 7).count(), 0);
        assert!(view.get(all.len()).is_none());
    }
}
