//! In-memory property graph storage.
//!
//! Vertices and edges carry typed attribute rows; adjacency is stored per
//! vertex as a flat, type-and-direction tagged list so the DARPE matcher
//! can walk `(edge type, direction)`-labelled transitions in O(degree).

use crate::schema::{ETypeId, Schema, SchemaError, VTypeId};
use crate::value::Value;
use std::fmt;

/// Identifier of a vertex (dense, global across vertex types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of an edge (dense, global across edge types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// The direction in which an adjacency entry crosses its edge, viewed from
/// the owning vertex:
///
/// * `Out` — a directed edge leaving the vertex (matches `E>`),
/// * `In`  — a directed edge entering the vertex (matches `<E`),
/// * `Und` — an undirected edge incident to the vertex (matches `E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    Out,
    In,
    Und,
}

/// One adjacency record: crossing `edge` from the owning vertex reaches
/// `other`, traversing in direction `dir`, and the edge has type `etype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    pub etype: ETypeId,
    pub dir: Dir,
    pub edge: EdgeId,
    pub other: VertexId,
}

#[derive(Debug, Clone)]
struct VertexData {
    vtype: VTypeId,
    attrs: Box<[Value]>,
}

#[derive(Debug, Clone)]
struct EdgeData {
    etype: ETypeId,
    src: VertexId,
    dst: VertexId,
    attrs: Box<[Value]>,
}

/// Errors raised by graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    Schema(SchemaError),
    BadVertexId(VertexId),
    BadEdgeId(EdgeId),
    AttrArity { expected: usize, got: usize },
    EndpointType { edge_type: String, endpoint: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Schema(e) => write!(f, "{e}"),
            GraphError::BadVertexId(v) => write!(f, "vertex id {} out of range", v.0),
            GraphError::BadEdgeId(e) => write!(f, "edge id {} out of range", e.0),
            GraphError::AttrArity { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            GraphError::EndpointType { edge_type, endpoint } => {
                write!(f, "edge type `{edge_type}` does not allow endpoint type `{endpoint}`")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<SchemaError> for GraphError {
    fn from(e: SchemaError) -> Self {
        GraphError::Schema(e)
    }
}

/// The property graph: schema + vertex/edge stores + adjacency.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    schema: Schema,
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    by_type: Vec<Vec<VertexId>>,
    adjacency: Vec<Vec<AdjEntry>>,
}

impl Graph {
    /// Creates an empty graph over `schema`.
    pub fn new(schema: Schema) -> Self {
        let nt = schema.vertex_type_count();
        Graph {
            schema,
            vertices: Vec::new(),
            edges: Vec::new(),
            by_type: vec![Vec::new(); nt],
            adjacency: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex of type `vt`. `attrs` must match the declared arity;
    /// missing trailing values are *not* defaulted — use
    /// [`GraphBuilder`] for name-based convenience.
    pub fn add_vertex(&mut self, vt: VTypeId, attrs: Vec<Value>) -> Result<VertexId, GraphError> {
        let def = self.schema.vertex_type(vt);
        if attrs.len() != def.attrs.len() {
            return Err(GraphError::AttrArity {
                expected: def.attrs.len(),
                got: attrs.len(),
            });
        }
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(VertexData {
            vtype: vt,
            attrs: attrs.into_boxed_slice(),
        });
        self.by_type[vt.0 as usize].push(id);
        self.adjacency.push(Vec::new());
        Ok(id)
    }

    /// Adds an edge of type `et` from `src` to `dst`. For undirected edge
    /// types the (src, dst) order is storage-only; traversal treats both
    /// endpoints symmetrically.
    pub fn add_edge(
        &mut self,
        et: ETypeId,
        src: VertexId,
        dst: VertexId,
        attrs: Vec<Value>,
    ) -> Result<EdgeId, GraphError> {
        if src.0 as usize >= self.vertices.len() {
            return Err(GraphError::BadVertexId(src));
        }
        if dst.0 as usize >= self.vertices.len() {
            return Err(GraphError::BadVertexId(dst));
        }
        let def = self.schema.edge_type(et);
        if attrs.len() != def.attrs.len() {
            return Err(GraphError::AttrArity {
                expected: def.attrs.len(),
                got: attrs.len(),
            });
        }
        let src_t = self.vertices[src.0 as usize].vtype;
        let dst_t = self.vertices[dst.0 as usize].vtype;
        if !def.from_types.is_empty() && !def.from_types.contains(&src_t) {
            return Err(GraphError::EndpointType {
                edge_type: def.name.clone(),
                endpoint: self.schema.vertex_type(src_t).name.clone(),
            });
        }
        if !def.to_types.is_empty() && !def.to_types.contains(&dst_t) {
            return Err(GraphError::EndpointType {
                edge_type: def.name.clone(),
                endpoint: self.schema.vertex_type(dst_t).name.clone(),
            });
        }
        let directed = def.directed;
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { etype: et, src, dst, attrs: attrs.into_boxed_slice() });
        if directed {
            self.adjacency[src.0 as usize].push(AdjEntry { etype: et, dir: Dir::Out, edge: id, other: dst });
            self.adjacency[dst.0 as usize].push(AdjEntry { etype: et, dir: Dir::In, edge: id, other: src });
        } else {
            self.adjacency[src.0 as usize].push(AdjEntry { etype: et, dir: Dir::Und, edge: id, other: dst });
            if src != dst {
                self.adjacency[dst.0 as usize].push(AdjEntry { etype: et, dir: Dir::Und, edge: id, other: src });
            }
        }
        Ok(id)
    }

    /// The type of vertex `v`.
    pub fn vertex_type_of(&self, v: VertexId) -> VTypeId {
        self.vertices[v.0 as usize].vtype
    }

    /// The type of edge `e`.
    pub fn edge_type_of(&self, e: EdgeId) -> ETypeId {
        self.edges[e.0 as usize].etype
    }

    /// Source and target of edge `e` as stored.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let d = &self.edges[e.0 as usize];
        (d.src, d.dst)
    }

    /// Vertex attribute by column index.
    pub fn vertex_attr(&self, v: VertexId, idx: usize) -> &Value {
        &self.vertices[v.0 as usize].attrs[idx]
    }

    /// Vertex attribute by name (schema lookup each call; the evaluator
    /// caches indices instead).
    pub fn vertex_attr_by_name(&self, v: VertexId, name: &str) -> Option<&Value> {
        let vt = self.vertex_type_of(v);
        let idx = self.schema.vertex_attr_index(vt, name)?;
        Some(self.vertex_attr(v, idx))
    }

    /// Edge attribute by column index.
    pub fn edge_attr(&self, e: EdgeId, idx: usize) -> &Value {
        &self.edges[e.0 as usize].attrs[idx]
    }

    /// Edge attribute by name.
    pub fn edge_attr_by_name(&self, e: EdgeId, name: &str) -> Option<&Value> {
        let et = self.edge_type_of(e);
        let idx = self.schema.edge_attr_index(et, name)?;
        Some(self.edge_attr(e, idx))
    }

    /// Overwrites a vertex attribute (used by loaders and mutation tests).
    pub fn set_vertex_attr(&mut self, v: VertexId, idx: usize, value: Value) {
        self.vertices[v.0 as usize].attrs[idx] = value;
    }

    /// All adjacency entries of `v`.
    pub fn adjacency(&self, v: VertexId) -> &[AdjEntry] {
        &self.adjacency[v.0 as usize]
    }

    /// All vertices of type `vt`, in insertion order.
    pub fn vertices_of_type(&self, vt: VTypeId) -> &[VertexId] {
        &self.by_type[vt.0 as usize]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// GSQL's `v.outdegree()`: number of edges leaving `v` (directed out
    /// plus undirected incident). With `etype`, restricted to that type.
    pub fn outdegree(&self, v: VertexId, etype: Option<ETypeId>) -> usize {
        self.adjacency[v.0 as usize]
            .iter()
            .filter(|a| a.dir != Dir::In && etype.is_none_or(|t| a.etype == t))
            .count()
    }

    /// Number of edges entering `v` (directed in plus undirected incident).
    pub fn indegree(&self, v: VertexId, etype: Option<ETypeId>) -> usize {
        self.adjacency[v.0 as usize]
            .iter()
            .filter(|a| a.dir != Dir::Out && etype.is_none_or(|t| a.etype == t))
            .count()
    }

    /// Total degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.0 as usize].len()
    }
}

/// A convenience layer over [`Graph`] resolving type and attribute names
/// once and defaulting unspecified attributes — the ergonomic way to build
/// example graphs.
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    pub fn new(schema: Schema) -> Self {
        GraphBuilder { graph: Graph::new(schema) }
    }

    /// Adds a vertex by type name with `(attr name, value)` pairs; omitted
    /// attributes take their type default.
    pub fn vertex(
        &mut self,
        type_name: &str,
        attrs: &[(&str, Value)],
    ) -> Result<VertexId, GraphError> {
        let vt = self
            .graph
            .schema
            .vertex_type_id(type_name)
            .ok_or_else(|| SchemaError::UnknownVertexType(type_name.to_string()))?;
        let def = self.graph.schema.vertex_type(vt);
        let mut row: Vec<Value> = def.attrs.iter().map(|a| a.ty.default_value()).collect();
        for (name, value) in attrs {
            let idx = self
                .graph
                .schema
                .vertex_attr_index(vt, name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    owner: type_name.to_string(),
                    attr: name.to_string(),
                })?;
            row[idx] = value.clone();
        }
        self.graph.add_vertex(vt, row)
    }

    /// Adds an edge by type name with named attributes.
    pub fn edge(
        &mut self,
        type_name: &str,
        src: VertexId,
        dst: VertexId,
        attrs: &[(&str, Value)],
    ) -> Result<EdgeId, GraphError> {
        let et = self
            .graph
            .schema
            .edge_type_id(type_name)
            .ok_or_else(|| SchemaError::UnknownEdgeType(type_name.to_string()))?;
        let def = self.graph.schema.edge_type(et);
        let mut row: Vec<Value> = def.attrs.iter().map(|a| a.ty.default_value()).collect();
        for (name, value) in attrs {
            let idx = self
                .graph
                .schema
                .edge_attr_index(et, name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    owner: type_name.to_string(),
                    attr: name.to_string(),
                })?;
            row[idx] = value.clone();
        }
        self.graph.add_edge(et, src, dst, row)
    }

    /// Finishes building.
    pub fn build(self) -> Graph {
        self.graph
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;
    use crate::value::ValueType;

    fn mixed_schema() -> Schema {
        let mut s = Schema::new();
        s.add_vertex_type("Person", vec![AttrDef::new("name", ValueType::Str)])
            .unwrap();
        s.add_edge_type("Follows", true, vec![]).unwrap();
        s.add_edge_type(
            "Knows",
            false,
            vec![AttrDef::new("since", ValueType::Int)],
        )
        .unwrap();
        s
    }

    #[test]
    fn directed_adjacency_both_sides() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Follows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        let e = g.add_edge(et, a, b, vec![]).unwrap();
        assert_eq!(
            g.adjacency(a),
            &[AdjEntry { etype: et, dir: Dir::Out, edge: e, other: b }]
        );
        assert_eq!(
            g.adjacency(b),
            &[AdjEntry { etype: et, dir: Dir::In, edge: e, other: a }]
        );
        assert_eq!(g.outdegree(a, None), 1);
        assert_eq!(g.outdegree(b, None), 0);
        assert_eq!(g.indegree(b, None), 1);
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        g.add_edge(et, a, b, vec![Value::Int(2016)]).unwrap();
        assert_eq!(g.adjacency(a)[0].dir, Dir::Und);
        assert_eq!(g.adjacency(b)[0].dir, Dir::Und);
        assert_eq!(g.adjacency(a)[0].other, b);
        assert_eq!(g.adjacency(b)[0].other, a);
        // Undirected edges count toward both out- and in-degree.
        assert_eq!(g.outdegree(a, None), 1);
        assert_eq!(g.indegree(a, None), 1);
    }

    #[test]
    fn undirected_self_loop_recorded_once() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        g.add_edge(et, a, a, vec![Value::Int(0)]).unwrap();
        assert_eq!(g.adjacency(a).len(), 1);
    }

    #[test]
    fn attribute_access() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Knows").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("alice")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("bob")]).unwrap();
        let e = g.add_edge(et, a, b, vec![Value::Int(2016)]).unwrap();
        assert_eq!(g.vertex_attr_by_name(a, "name"), Some(&Value::from("alice")));
        assert_eq!(g.edge_attr_by_name(e, "since"), Some(&Value::Int(2016)));
        assert_eq!(g.vertex_attr_by_name(a, "nope"), None);
    }

    #[test]
    fn arity_and_id_errors() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let et = g.schema().edge_type_id("Follows").unwrap();
        assert!(matches!(
            g.add_vertex(vt, vec![]),
            Err(GraphError::AttrArity { expected: 1, got: 0 })
        ));
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        assert!(matches!(
            g.add_edge(et, a, VertexId(99), vec![]),
            Err(GraphError::BadVertexId(_))
        ));
    }

    #[test]
    fn endpoint_constraints_enforced() {
        let mut s = Schema::new();
        let p = s.add_vertex_type("P", vec![]).unwrap();
        let q = s.add_vertex_type("Q", vec![]).unwrap();
        s.add_edge_type_between("PQ", true, vec![p], vec![q], vec![])
            .unwrap();
        let mut g = Graph::new(s);
        let et = g.schema().edge_type_id("PQ").unwrap();
        let vp = g.add_vertex(p, vec![]).unwrap();
        let vq = g.add_vertex(q, vec![]).unwrap();
        assert!(g.add_edge(et, vp, vq, vec![]).is_ok());
        assert!(matches!(
            g.add_edge(et, vq, vp, vec![]),
            Err(GraphError::EndpointType { .. })
        ));
    }

    #[test]
    fn builder_defaults_and_names() {
        let mut b = GraphBuilder::new(mixed_schema());
        let a = b.vertex("Person", &[("name", Value::from("a"))]).unwrap();
        let c = b.vertex("Person", &[]).unwrap();
        b.edge("Knows", a, c, &[("since", Value::Int(2020))]).unwrap();
        let g = b.build();
        assert_eq!(g.vertex_attr_by_name(c, "name"), Some(&Value::Str(String::new())));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn vertices_of_type_tracks_insertion() {
        let mut g = Graph::new(mixed_schema());
        let vt = g.schema().vertex_type_id("Person").unwrap();
        let a = g.add_vertex(vt, vec![Value::from("a")]).unwrap();
        let b = g.add_vertex(vt, vec![Value::from("b")]).unwrap();
        assert_eq!(g.vertices_of_type(vt), &[a, b]);
    }
}
