//! Arbitrary-precision unsigned counters for path multiplicities.
//!
//! All-shortest-paths semantics can legalize **exponentially many** paths
//! (Example 11 of the paper: `2^k` paths through a k-diamond chain), and
//! Theorem 6.1 requires *counting* them without enumeration. A fixed-width
//! integer would overflow beyond `2^64` paths on ~64 diamonds, so the
//! engine carries multiplicities as [`BigCount`] — a little-endian base
//! 2^64 unsigned integer supporting exactly the arithmetic the evaluator
//! needs: addition (BFS count propagation), multiplication (join
//! multiplicity products, Appendix A), conversion to `f64`/`u64` (for
//! `μ·i` inputs into numeric accumulators) and decimal display.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer. Invariant: no trailing zero
/// limbs (the canonical representation of zero is an empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigCount {
    /// Little-endian base-2^64 limbs.
    limbs: Vec<u64>,
}

impl BigCount {
    /// The zero count.
    #[inline]
    pub fn zero() -> Self {
        BigCount { limbs: Vec::new() }
    }

    /// The unit count.
    #[inline]
    pub fn one() -> Self {
        BigCount::from(1u64)
    }

    /// True iff this count is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff this count is exactly one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &BigCount) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self += k` for a machine-word increment.
    pub fn add_u64(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        let mut carry = k;
        for limb in &mut self.limbs {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            if !c {
                return;
            }
            carry = 1;
        }
        self.limbs.push(carry);
    }

    /// Returns `self * other` (schoolbook multiplication; multiplicity
    /// products across pattern hops are small in limb count).
    pub fn mul(&self, other: &BigCount) -> BigCount {
        if self.is_zero() || other.is_zero() {
            return BigCount::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigCount { limbs: out };
        r.trim();
        r
    }

    /// `self *= k` for a machine-word factor.
    pub fn mul_u64(&mut self, k: u64) {
        if k == 0 {
            self.limbs.clear();
            return;
        }
        if k == 1 {
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let cur = (*limb as u128) * (k as u128) + carry;
            *limb = cur as u64;
            carry = cur >> 64;
        }
        while carry != 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
    }

    /// Divides in place by a nonzero machine word, returning the remainder.
    fn div_rem_u64(&mut self, d: u64) -> u64 {
        debug_assert!(d != 0);
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | (*limb as u128);
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.trim();
        rem as u64
    }

    /// Lossy conversion to `f64` (used for `μ·i` inputs to floating-point
    /// accumulators). Saturates to `f64::INFINITY` far beyond any
    /// realistic count.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }

    /// Exact conversion to `u64` if the count fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Exact conversion to `i64` if the count fits.
    pub fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// `2^k`, the multiplicity of the k-diamond chain experiment.
    pub fn pow2(k: usize) -> BigCount {
        let mut limbs = vec![0u64; k / 64 + 1];
        limbs[k / 64] = 1u64 << (k % 64);
        let mut r = BigCount { limbs };
        r.trim();
        r
    }
}

impl From<u64> for BigCount {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigCount::zero()
        } else {
            BigCount { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigCount {
    fn from(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut r = BigCount { limbs: vec![lo, hi] };
        r.trim();
        r
    }
}

impl PartialOrd for BigCount {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigCount {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            o => o,
        }
    }
}

impl fmt::Display for BigCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut work = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !work.is_zero() {
            parts.push(work.div_rem_u64(CHUNK));
        }
        let mut it = parts.iter().rev();
        if let Some(first) = it.next() {
            write!(f, "{first}")?;
        }
        for p in it {
            write!(f, "{p:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigCount({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigCount::zero().is_zero());
        assert!(BigCount::one().is_one());
        assert_eq!(BigCount::zero().to_string(), "0");
        assert_eq!(BigCount::one().to_string(), "1");
    }

    #[test]
    fn addition_with_carry() {
        let mut a = BigCount::from(u64::MAX);
        a.add_u64(1);
        assert_eq!(a.to_string(), "18446744073709551616");
        assert_eq!(a.bits(), 65);
    }

    #[test]
    fn add_assign_big() {
        let mut a = BigCount::pow2(100);
        let b = BigCount::pow2(100);
        a.add_assign(&b);
        assert_eq!(a, BigCount::pow2(101));
    }

    #[test]
    fn multiplication() {
        let a = BigCount::pow2(70);
        let b = BigCount::pow2(60);
        assert_eq!(a.mul(&b), BigCount::pow2(130));
        let mut c = BigCount::from(3u64);
        c.mul_u64(5);
        assert_eq!(c.to_u64(), Some(15));
    }

    #[test]
    fn mul_by_zero_clears() {
        let mut a = BigCount::pow2(200);
        a.mul_u64(0);
        assert!(a.is_zero());
        assert!(BigCount::pow2(3).mul(&BigCount::zero()).is_zero());
    }

    #[test]
    fn display_matches_known_powers() {
        assert_eq!(BigCount::pow2(10).to_string(), "1024");
        assert_eq!(BigCount::pow2(30).to_string(), "1073741824");
        assert_eq!(
            BigCount::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(BigCount::pow2(65) > BigCount::from(u64::MAX));
        assert!(BigCount::from(2u64) < BigCount::from(3u64));
        assert_eq!(BigCount::pow2(0), BigCount::one());
    }

    #[test]
    fn f64_conversion_is_close() {
        let v = BigCount::pow2(80);
        let expect = (2f64).powi(80);
        assert!((v.to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(BigCount::from(v).to_u64(), Some(v));
        }
        assert_eq!(BigCount::pow2(64).to_u64(), None);
    }
}
