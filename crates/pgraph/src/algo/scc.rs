//! Strongly connected components (iterative Tarjan). Complements the
//! weakly-connected reference and backs tests about directed
//! reachability structure (every cycle a Kleene pattern can wrap lives
//! inside one SCC).

use crate::graph::{Dir, Graph, VertexId};

/// Returns `(component id per vertex, component count)`. Ids are
/// assigned in reverse topological order of the condensation (Tarjan's
/// numbering); singleton vertices get their own component.
pub fn strongly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let n = g.vertex_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Iterative Tarjan: frame = (vertex, next adjacency offset).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut ai)) = call.last_mut() {
            let vi = v as usize;
            if *ai == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let adj = g.adjacency(VertexId(v));
            let mut recursed = false;
            while *ai < adj.len() {
                let a = adj[*ai];
                *ai += 1;
                if a.dir == Dir::In {
                    continue; // follow Out and Und only
                }
                let w = a.other.0 as usize;
                if index[w] == UNVISITED {
                    call.push((a.other.0, 0));
                    recursed = true;
                    break;
                } else if on_stack[w] {
                    lowlink[vi] = lowlink[vi].min(index[w]);
                }
            }
            if recursed {
                continue;
            }
            // v finished.
            if lowlink[vi] == index[vi] {
                loop {
                    let w = stack.pop().unwrap();
                    on_stack[w as usize] = false;
                    comp[w as usize] = comp_count;
                    if w == v {
                        break;
                    }
                }
                comp_count += 1;
            }
            call.pop();
            if let Some(&mut (p, _)) = call.last_mut() {
                let pi = p as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
        }
    }
    (comp, comp_count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{directed_cycle, directed_path, ve_schema};
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    #[test]
    fn cycle_is_one_component() {
        let (g, _) = directed_cycle(6);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn path_is_all_singletons() {
        let (g, _) = directed_path(5);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 6);
        // All distinct.
        let mut c = comp.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // cycle {0,1,2} -> bridge -> cycle {3,4,5}: two SCCs.
        let mut b = GraphBuilder::new(ve_schema());
        let vs: Vec<_> = (0..6)
            .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
            .collect();
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.edge("E", vs[s], vs[t], &[]).unwrap();
        }
        let g = b.build();
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[3]);
        // Reverse topological numbering: the sink SCC {3,4,5} closes first.
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn undirected_edges_are_bidirectional() {
        // a -UndE- b forms a 2-cycle for SCC purposes.
        let mut s = crate::schema::Schema::new();
        s.add_vertex_type("V", vec![]).unwrap();
        s.add_edge_type("U", false, vec![]).unwrap();
        let mut g = crate::graph::Graph::new(s);
        let vt = g.schema().vertex_type_id("V").unwrap();
        let et = g.schema().edge_type_id("U").unwrap();
        let a = g.add_vertex(vt, vec![]).unwrap();
        let b = g.add_vertex(vt, vec![]).unwrap();
        g.add_edge(et, a, b, vec![]).unwrap();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn scc_refines_wcc() {
        let g = crate::generators::erdos_renyi(60, 0.05, 11);
        let (scc, nscc) = strongly_connected_components(&g);
        let (wcc, nwcc) = crate::algo::weakly_connected_components(&g);
        assert!(nscc >= nwcc);
        // Vertices in the same SCC are in the same WCC.
        for i in 0..g.vertex_count() {
            for j in 0..g.vertex_count() {
                if scc[i] == scc[j] {
                    assert_eq!(wcc[i], wcc[j]);
                }
            }
        }
    }
}
