//! Native PageRank matching the GSQL formulation of Example 7.
//!
//! Every vertex starts with score 1; one iteration sets
//! `score(v) = (1 - d) + d * Σ_{u -> v} score(u) / outdeg(u)`,
//! and iteration stops after `max_iter` rounds or when the maximum
//! absolute score change drops to `max_change` or below — exactly the
//! termination rule of the paper's `PageRank` query, so the interpreter
//! cross-check can demand equality to floating-point tolerance.

use crate::graph::{Dir, Graph};
use crate::schema::ETypeId;

/// Runs PageRank restricted to edges of type `link` (directed `Out` and
/// undirected traversals contribute). Returns per-vertex scores indexed
/// by `VertexId`.
pub fn pagerank(
    g: &Graph,
    link: ETypeId,
    damping: f64,
    max_change: f64,
    max_iter: usize,
) -> Vec<f64> {
    let n = g.vertex_count();
    let mut score = vec![1.0f64; n];
    let mut received = vec![0.0f64; n];
    let outdeg: Vec<usize> = (0..n)
        .map(|i| g.outdegree(crate::graph::VertexId(i as u32), Some(link)))
        .collect();
    for _ in 0..max_iter {
        received.iter_mut().for_each(|r| *r = 0.0);
        for u in g.vertices() {
            let d = outdeg[u.0 as usize];
            if d == 0 {
                continue;
            }
            let share = score[u.0 as usize] / d as f64;
            for a in g.adjacency(u) {
                if a.etype != link || a.dir == Dir::In {
                    continue;
                }
                received[a.other.0 as usize] += share;
            }
        }
        let mut max_diff = 0.0f64;
        for i in 0..n {
            let new_score = 1.0 - damping + damping * received[i];
            max_diff = max_diff.max((new_score - score[i]).abs());
            score[i] = new_score;
        }
        if max_diff <= max_change {
            break;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{directed_cycle, ve_schema};
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    #[test]
    fn symmetric_cycle_converges_to_one() {
        let (g, _) = directed_cycle(5);
        let et = g.schema().edge_type_id("E").unwrap();
        let scores = pagerank(&g, et, 0.85, 1e-12, 500);
        for s in scores {
            assert!((s - 1.0).abs() < 1e-9, "cycle score should be 1, got {s}");
        }
    }

    #[test]
    fn sink_receives_more_than_source() {
        // a -> b: b accumulates a's share, a only gets the teleport mass.
        let mut b = GraphBuilder::new(ve_schema());
        let va = b.vertex("V", &[("name", Value::from("a"))]).unwrap();
        let vb = b.vertex("V", &[("name", Value::from("b"))]).unwrap();
        b.edge("E", va, vb, &[]).unwrap();
        let g = b.build();
        let et = g.schema().edge_type_id("E").unwrap();
        let scores = pagerank(&g, et, 0.85, 1e-12, 200);
        assert!(scores[vb.0 as usize] > scores[va.0 as usize]);
        assert!((scores[va.0 as usize] - 0.15).abs() < 1e-9);
    }

    #[test]
    fn early_termination_respects_max_change() {
        let (g, _) = directed_cycle(4);
        let et = g.schema().edge_type_id("E").unwrap();
        // On a cycle scores never move off 1.0, so one iteration suffices.
        let scores = pagerank(&g, et, 0.85, 0.5, 1000);
        for s in scores {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
