//! Native (non-GSQL) reference implementations of classic graph
//! algorithms.
//!
//! These exist to **cross-validate the GSQL interpreter**: every iterative
//! algorithm the paper expresses in GSQL (PageRank of Example 7, the path
//! counting of Section 7.1, connected components, shortest paths) has a
//! plain-Rust twin here, and the integration tests assert the two agree.

pub mod bfs;
pub mod pagerank;
pub mod scc;
pub mod sssp;
pub mod triangles;
pub mod wcc;

pub use bfs::{count_paths_enumerated, count_shortest_paths, EnumerationPolicy};
pub use pagerank::pagerank;
pub use scc::strongly_connected_components;
pub use sssp::bfs_distances;
pub use triangles::triangle_count;
pub use wcc::weakly_connected_components;
