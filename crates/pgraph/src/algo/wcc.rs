//! Weakly connected components via union-find (path halving + union by
//! size). Reference for the GSQL WCC query in the algorithm library.

use crate::graph::Graph;

/// Returns the component label of every vertex (labels are the smallest
/// vertex id in the component, making the output canonical), plus the
/// number of components.
pub fn weakly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size = vec![1u32; n];

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for e in g.edges() {
        let (s, t) = g.edge_endpoints(e);
        let (mut a, mut b) = (find(&mut parent, s.0), find(&mut parent, t.0));
        if a == b {
            continue;
        }
        if size[a as usize] < size[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        parent[b as usize] = a;
        size[a as usize] += size[b as usize];
    }

    // Canonical labels: min vertex id per root.
    let mut min_label = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        min_label[r as usize] = min_label[r as usize].min(v);
    }
    let mut labels = vec![0u32; n];
    let mut count = 0usize;
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        labels[v as usize] = min_label[r as usize];
        if labels[v as usize] == v {
            count += 1;
        }
    }
    (labels, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{directed_path, ve_schema};
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    #[test]
    fn single_path_single_component() {
        let (g, _) = directed_path(5);
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let mut b = GraphBuilder::new(ve_schema());
        for i in 0..4 {
            b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap();
        }
        let g = b.build();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(ve_schema());
        let vs: Vec<_> = (0..6)
            .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
            .collect();
        b.edge("E", vs[0], vs[1], &[]).unwrap();
        b.edge("E", vs[1], vs[2], &[]).unwrap();
        b.edge("E", vs[3], vs[4], &[]).unwrap();
        b.edge("E", vs[4], vs[5], &[]).unwrap();
        let g = b.build();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0..3], [0, 0, 0]);
        assert_eq!(labels[3..6], [3, 3, 3]);
    }

    #[test]
    fn direction_is_ignored() {
        // x -> y and z -> y: weakly connected even though not strongly.
        let mut b = GraphBuilder::new(ve_schema());
        let x = b.vertex("V", &[("name", Value::from("x"))]).unwrap();
        let y = b.vertex("V", &[("name", Value::from("y"))]).unwrap();
        let z = b.vertex("V", &[("name", Value::from("z"))]).unwrap();
        b.edge("E", x, y, &[]).unwrap();
        b.edge("E", z, y, &[]).unwrap();
        let g = b.build();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }
}
