//! Single-source shortest paths (unweighted BFS), reference for the GSQL
//! shortest-path queries and for validating SDMC distances.

use crate::graph::{Dir, Graph, VertexId};
use std::collections::VecDeque;

/// BFS hop distances from `src` following `Out`/`Und` adjacency
/// (`None` = unreachable).
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.vertex_count()];
    dist[src.0 as usize] = Some(0);
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.0 as usize].unwrap();
        for a in g.adjacency(u) {
            if a.dir == Dir::In {
                continue;
            }
            let slot = &mut dist[a.other.0 as usize];
            if slot.is_none() {
                *slot = Some(du + 1);
                q.push_back(a.other);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{diamond_chain, directed_cycle, directed_path};

    #[test]
    fn path_distances_are_indices() {
        let (g, vs) = directed_path(4);
        let d = bfs_distances(&g, vs[0]);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(d[v.0 as usize], Some(i as u32));
        }
    }

    #[test]
    fn reverse_unreachable_on_directed_path() {
        let (g, vs) = directed_path(4);
        let d = bfs_distances(&g, vs[4]);
        assert_eq!(d[vs[0].0 as usize], None);
        assert_eq!(d[vs[4].0 as usize], Some(0));
    }

    #[test]
    fn cycle_wraps() {
        let (g, vs) = directed_cycle(6);
        let d = bfs_distances(&g, vs[0]);
        assert_eq!(d[vs[5].0 as usize], Some(5));
    }

    #[test]
    fn diamond_spine_distance_is_two_per_diamond() {
        let (g, spine) = diamond_chain(5);
        let d = bfs_distances(&g, spine[0]);
        for (k, v) in spine.iter().enumerate() {
            assert_eq!(d[v.0 as usize], Some(2 * k as u32));
        }
    }
}

/// Weighted single-source shortest paths (Dijkstra) with weights read
/// from edge attribute column `weight_idx` (numeric, non-negative).
/// Follows `Out`/`Und` adjacency. `None` = unreachable.
pub fn dijkstra(g: &Graph, src: VertexId, weight_idx: usize) -> Vec<Option<f64>> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap via reversed comparison on the distance.
            other.0.total_cmp(&self.0)
        }
    }

    let mut dist: Vec<Option<f64>> = vec![None; g.vertex_count()];
    let mut heap = BinaryHeap::new();
    dist[src.0 as usize] = Some(0.0);
    heap.push(Entry(0.0, src));
    while let Some(Entry(d, u)) = heap.pop() {
        if dist[u.0 as usize].is_some_and(|best| d > best) {
            continue;
        }
        for a in g.adjacency(u) {
            if a.dir == Dir::In {
                continue;
            }
            let w = g
                .edge_attr(a.edge, weight_idx)
                .as_f64()
                .unwrap_or(f64::INFINITY)
                .max(0.0);
            let nd = d + w;
            let slot = &mut dist[a.other.0 as usize];
            if slot.is_none() || slot.is_some_and(|cur| nd < cur) {
                *slot = Some(nd);
                heap.push(Entry(nd, a.other));
            }
        }
    }
    dist
}

#[cfg(test)]
mod dijkstra_tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};
    use crate::value::{Value, ValueType};

    fn weighted_graph() -> (Graph, Vec<VertexId>) {
        let mut s = Schema::new();
        s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
        s.add_edge_type("E", true, vec![AttrDef::new("w", ValueType::Double)]).unwrap();
        let mut b = crate::graph::GraphBuilder::new(s);
        let vs: Vec<VertexId> = (0..5)
            .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
            .collect();
        // 0 -1-> 1 -1-> 2 and 0 -5-> 2; 2 -2-> 3; 4 isolated.
        for (s_, t, w) in [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)] {
            b.edge("E", vs[s_], vs[t], &[("w", Value::Double(w))]).unwrap();
        }
        (b.build(), vs)
    }

    #[test]
    fn prefers_cheaper_multi_hop_route() {
        let (g, vs) = weighted_graph();
        let d = dijkstra(&g, vs[0], 0);
        assert_eq!(d[vs[0].0 as usize], Some(0.0));
        assert_eq!(d[vs[1].0 as usize], Some(1.0));
        assert_eq!(d[vs[2].0 as usize], Some(2.0)); // via v1, not the 5.0 edge
        assert_eq!(d[vs[3].0 as usize], Some(4.0));
        assert_eq!(d[vs[4].0 as usize], None);
    }

    #[test]
    fn unweighted_dijkstra_matches_bfs_hops() {
        // With all weights 1, Dijkstra distance = BFS hop count.
        let mut s = Schema::new();
        s.add_vertex_type("V", vec![]).unwrap();
        s.add_edge_type("E", true, vec![AttrDef::new("w", ValueType::Double)]).unwrap();
        let mut g = Graph::new(s);
        let vt = g.schema().vertex_type_id("V").unwrap();
        let et = g.schema().edge_type_id("E").unwrap();
        let vs: Vec<VertexId> = (0..20).map(|_| g.add_vertex(vt, vec![]).unwrap()).collect();
        for i in 0..19usize {
            g.add_edge(et, vs[i], vs[(i * 7 + 3) % 20], vec![Value::Double(1.0)]).unwrap();
            g.add_edge(et, vs[i], vs[i + 1], vec![Value::Double(1.0)]).unwrap();
        }
        let dj = dijkstra(&g, vs[0], 0);
        let bfs = bfs_distances(&g, vs[0]);
        for i in 0..20 {
            assert_eq!(dj[i].map(|d| d as u32), bfs[i]);
        }
    }
}
