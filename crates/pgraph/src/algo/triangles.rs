//! Triangle counting on the undirected view of the graph (every edge is
//! treated as a symmetric connection). Used by tests exercising
//! multi-hop fixed-length patterns.

use crate::fxhash::FxHashSet;
use crate::graph::{Graph, VertexId};

/// Counts unordered triangles {a, b, c} in the undirected view, ignoring
/// self-loops and collapsing parallel edges.
pub fn triangle_count(g: &Graph) -> u64 {
    let n = g.vertex_count();
    // Neighbor sets restricted to higher-numbered vertices (orientation by
    // id), the classic counting trick: each triangle is counted once at
    // its smallest vertex.
    let mut nbrs: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for e in g.edges() {
        let (s, t) = g.edge_endpoints(e);
        if s == t {
            continue;
        }
        let (lo, hi) = if s.0 < t.0 { (s.0, t.0) } else { (t.0, s.0) };
        nbrs[lo as usize].insert(hi);
    }
    let mut count = 0u64;
    for a in 0..n {
        let na: Vec<u32> = nbrs[a].iter().copied().collect();
        for (i, &b) in na.iter().enumerate() {
            for &c in &na[i + 1..] {
                let (lo, hi) = if b < c { (b, c) } else { (c, b) };
                if nbrs[lo as usize].contains(&hi) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Convenience: triangle count through a specific vertex.
pub fn triangles_through(g: &Graph, v: VertexId) -> u64 {
    let mut nbrs: FxHashSet<u32> = FxHashSet::default();
    for a in g.adjacency(v) {
        if a.other != v {
            nbrs.insert(a.other.0);
        }
    }
    let list: Vec<u32> = nbrs.iter().copied().collect();
    let mut count = 0u64;
    for (i, &b) in list.iter().enumerate() {
        for &c in &list[i + 1..] {
            let vb = VertexId(b);
            if g.adjacency(vb).iter().any(|a| a.other.0 == c) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ve_schema;
    use crate::graph::GraphBuilder;
    use crate::value::Value;

    fn clique(k: usize) -> Graph {
        let mut b = GraphBuilder::new(ve_schema());
        let vs: Vec<_> = (0..k)
            .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
            .collect();
        for i in 0..k {
            for j in (i + 1)..k {
                b.edge("E", vs[i], vs[j], &[]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn clique_counts() {
        assert_eq!(triangle_count(&clique(3)), 1);
        assert_eq!(triangle_count(&clique(4)), 4);
        assert_eq!(triangle_count(&clique(5)), 10);
    }

    #[test]
    fn path_has_none() {
        let (g, _) = crate::generators::directed_path(5);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn parallel_edges_do_not_double_count() {
        let mut b = GraphBuilder::new(ve_schema());
        let a = b.vertex("V", &[("name", Value::from("a"))]).unwrap();
        let c = b.vertex("V", &[("name", Value::from("b"))]).unwrap();
        let d = b.vertex("V", &[("name", Value::from("c"))]).unwrap();
        b.edge("E", a, c, &[]).unwrap();
        b.edge("E", a, c, &[]).unwrap(); // parallel
        b.edge("E", c, d, &[]).unwrap();
        b.edge("E", d, a, &[]).unwrap();
        let g = b.build();
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn through_vertex() {
        let g = clique(4);
        // Each vertex of K4 participates in C(3,2) = 3 triangles.
        assert_eq!(triangles_through(&g, VertexId(0)), 3);
    }
}
