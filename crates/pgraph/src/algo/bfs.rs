//! Reference path counting, both polynomial (BFS counting) and
//! exponential (explicit enumeration), untyped (every out-going edge is
//! followed). The DARPE-aware versions live in the query engine; these
//! are the ground truth for single-edge-type graphs like the diamond
//! chain.

use crate::bigcount::BigCount;
use crate::fxhash::FxHashSet;
use crate::graph::{Dir, EdgeId, Graph, VertexId};
use std::collections::VecDeque;

/// Counts shortest directed paths from `src` to `dst` following `Out` and
/// `Und` adjacency, with the standard BFS counting recurrence. Returns
/// `(shortest length, count)`, or `None` when `dst` is unreachable.
///
/// This is the untyped special case of the paper's single-pair SDMC
/// (Theorem 6.1): polynomial time, counts without materializing paths.
pub fn count_shortest_paths(g: &Graph, src: VertexId, dst: VertexId) -> Option<(usize, BigCount)> {
    let n = g.vertex_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    let mut cnt: Vec<BigCount> = vec![BigCount::zero(); n];
    dist[src.0 as usize] = 0;
    cnt[src.0 as usize] = BigCount::one();
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.0 as usize];
        if dst != src && dist[dst.0 as usize] != u32::MAX && du >= dist[dst.0 as usize] {
            // Every remaining frontier vertex is at least as far as dst;
            // counts into dst are already complete once we pass its level.
            if du > dist[dst.0 as usize] {
                break;
            }
        }
        for a in g.adjacency(u) {
            if a.dir == Dir::In {
                continue;
            }
            let v = a.other.0 as usize;
            if dist[v] == u32::MAX {
                dist[v] = du + 1;
                cnt[v] = cnt[u.0 as usize].clone();
                q.push_back(a.other);
            } else if dist[v] == du + 1 {
                let add = cnt[u.0 as usize].clone();
                cnt[v].add_assign(&add);
            }
        }
    }
    if dist[dst.0 as usize] == u32::MAX {
        None
    } else {
        Some((dist[dst.0 as usize] as usize, cnt[dst.0 as usize].clone()))
    }
}

/// Which paths an enumeration counts — the legality flavors of Section 6
/// that require explicit materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationPolicy {
    /// No repeated edges (Cypher's default).
    NonRepeatedEdge,
    /// No repeated vertices (Gremlin tutorial style).
    NonRepeatedVertex,
    /// All paths of exactly the given length (used to model Neo4j's
    /// enumerate-all-shortest-paths behaviour: first find the shortest
    /// length by BFS, then enumerate).
    ExactLength(usize),
}

/// Explicitly enumerates (and counts) the legal directed paths from `src`
/// to `dst` under `policy`. Worst-case exponential — this is the baseline
/// whose blow-up Table 1 demonstrates. `limit` aborts the count early
/// (returns `None`) once more than `limit` paths have been found, so
/// benchmarks can time out gracefully.
pub fn count_paths_enumerated(
    g: &Graph,
    src: VertexId,
    dst: VertexId,
    policy: EnumerationPolicy,
    limit: Option<u64>,
) -> Option<u64> {
    struct DfsState<'a> {
        g: &'a Graph,
        dst: VertexId,
        policy: EnumerationPolicy,
        limit: Option<u64>,
        used_edges: FxHashSet<EdgeId>,
        used_vertices: FxHashSet<VertexId>,
        found: u64,
        overflow: bool,
    }
    impl DfsState<'_> {
        fn dfs(&mut self, u: VertexId, depth: usize) {
            if self.overflow {
                return;
            }
            let at_dst = u == self.dst;
            match self.policy {
                EnumerationPolicy::ExactLength(len) => {
                    if depth == len {
                        if at_dst {
                            self.bump();
                        }
                        return;
                    }
                }
                _ => {
                    if at_dst && depth > 0 {
                        self.bump();
                        // Non-repeating paths may continue through dst and
                        // come back? No: a path *ends* at dst for counting
                        // purposes; longer paths through dst to dst again
                        // are different paths only if they end at dst later.
                        // Both Cypher and Gremlin treat each simple path
                        // reaching dst as one match, and paths may revisit
                        // dst only if vertex repetition is allowed — for
                        // NonRepeatedEdge we must keep exploring.
                        if self.policy == EnumerationPolicy::NonRepeatedVertex {
                            return;
                        }
                    }
                }
            }
            for i in 0..self.g.adjacency(u).len() {
                let a = self.g.adjacency(u)[i];
                if a.dir == Dir::In {
                    continue;
                }
                match self.policy {
                    EnumerationPolicy::NonRepeatedEdge => {
                        if !self.used_edges.insert(a.edge) {
                            continue;
                        }
                        self.dfs(a.other, depth + 1);
                        self.used_edges.remove(&a.edge);
                    }
                    EnumerationPolicy::NonRepeatedVertex => {
                        if !self.used_vertices.insert(a.other) {
                            continue;
                        }
                        self.dfs(a.other, depth + 1);
                        self.used_vertices.remove(&a.other);
                    }
                    EnumerationPolicy::ExactLength(_) => {
                        self.dfs(a.other, depth + 1);
                    }
                }
            }
        }
        fn bump(&mut self) {
            self.found += 1;
            if let Some(l) = self.limit {
                if self.found > l {
                    self.overflow = true;
                }
            }
        }
    }
    let mut st = DfsState {
        g,
        dst,
        policy,
        limit,
        used_edges: FxHashSet::default(),
        used_vertices: FxHashSet::default(),
        found: 0,
        overflow: false,
    };
    st.used_vertices.insert(src);
    st.dfs(src, 0);
    if st.overflow {
        None
    } else {
        Some(st.found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{diamond_chain, directed_cycle, directed_path, example9_g1, grid};

    #[test]
    fn diamond_counts_are_powers_of_two() {
        let (g, spine) = diamond_chain(8);
        for k in 1..=8 {
            let (len, cnt) = count_shortest_paths(&g, spine[0], spine[k]).unwrap();
            assert_eq!(len, 2 * k);
            assert_eq!(cnt, BigCount::pow2(k));
        }
    }

    #[test]
    fn diamond_counts_huge() {
        // 80 diamonds would overflow u64; BigCount must carry it.
        let (g, spine) = diamond_chain(80);
        let (_, cnt) = count_shortest_paths(&g, spine[0], spine[80]).unwrap();
        assert_eq!(cnt, BigCount::pow2(80));
    }

    #[test]
    fn grid_counts_are_binomials() {
        let (g, m) = grid(4, 4);
        let (len, cnt) = count_shortest_paths(&g, m[0][0], m[3][3]).unwrap();
        assert_eq!(len, 6);
        assert_eq!(cnt.to_u64(), Some(20)); // C(6,3)
    }

    #[test]
    fn unreachable_is_none() {
        let (g, vs) = directed_path(3);
        assert!(count_shortest_paths(&g, vs[3], vs[0]).is_none());
    }

    #[test]
    fn source_equals_target() {
        let (g, vs) = directed_path(3);
        let (len, cnt) = count_shortest_paths(&g, vs[1], vs[1]).unwrap();
        assert_eq!(len, 0);
        assert!(cnt.is_one());
    }

    #[test]
    fn g1_flavor_counts_match_example9() {
        // Example 9: from vertex 1 to vertex 5 there are 3 non-repeated-
        // vertex paths, 4 non-repeated-edge paths and 2 shortest paths.
        let (g, v) = example9_g1();
        assert_eq!(
            count_paths_enumerated(&g, v[1], v[5], EnumerationPolicy::NonRepeatedVertex, None),
            Some(3)
        );
        assert_eq!(
            count_paths_enumerated(&g, v[1], v[5], EnumerationPolicy::NonRepeatedEdge, None),
            Some(4)
        );
        let (len, cnt) = count_shortest_paths(&g, v[1], v[5]).unwrap();
        assert_eq!(len, 4);
        assert_eq!(cnt.to_u64(), Some(2));
    }

    #[test]
    fn enumeration_matches_counting_on_diamonds() {
        let (g, spine) = diamond_chain(6);
        let (len, cnt) = count_shortest_paths(&g, spine[0], spine[6]).unwrap();
        for policy in [
            EnumerationPolicy::NonRepeatedEdge,
            EnumerationPolicy::NonRepeatedVertex,
            EnumerationPolicy::ExactLength(len),
        ] {
            assert_eq!(
                count_paths_enumerated(&g, spine[0], spine[6], policy, None),
                cnt.to_u64()
            );
        }
    }

    #[test]
    fn enumeration_limit_aborts() {
        let (g, spine) = diamond_chain(10);
        assert_eq!(
            count_paths_enumerated(
                &g,
                spine[0],
                spine[10],
                EnumerationPolicy::NonRepeatedEdge,
                Some(100)
            ),
            None
        );
    }

    #[test]
    fn cycle_has_no_simple_path_back_to_start_but_exact_length_does() {
        let (g, vs) = directed_cycle(4);
        // v0 -> ... -> v0 of exact length 4 wraps the cycle once.
        assert_eq!(
            count_paths_enumerated(&g, vs[0], vs[0], EnumerationPolicy::ExactLength(4), None),
            Some(1)
        );
        assert_eq!(
            count_paths_enumerated(&g, vs[0], vs[0], EnumerationPolicy::ExactLength(8), None),
            Some(1)
        );
    }
}
