//! Plain-text graph serialization.
//!
//! A simple line-oriented format so example graphs and generator outputs
//! can be persisted and reloaded without external dependencies:
//!
//! ```text
//! #SCHEMA
//! VTYPE Person name:STRING age:INT
//! ETYPE Knows UNDIRECTED since:INT
//! #DATA
//! V Person alice 31
//! V Person bob 27
//! E Knows 0 1 2016
//! ```
//!
//! Vertex ids in `E` lines are 0-based insertion indices. Fields are
//! tab-separated in the data section (the header uses spaces); strings
//! escape tab, newline and backslash.

use crate::graph::{Graph, GraphError};
use crate::schema::{AttrDef, Schema, SchemaError};
use crate::value::{Value, ValueType};

/// Errors from parsing or serializing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    Syntax { line: usize, msg: String },
    Schema(SchemaError),
    Graph(String),
    /// The output sink failed while serializing.
    Write(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            LoadError::Schema(e) => write!(f, "{e}"),
            LoadError::Graph(e) => write!(f, "{e}"),
            LoadError::Write(e) => write!(f, "write failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<SchemaError> for LoadError {
    fn from(e: SchemaError) -> Self {
        LoadError::Schema(e)
    }
}

impl From<GraphError> for LoadError {
    fn from(e: GraphError) -> Self {
        LoadError::Graph(e.to_string())
    }
}

impl From<std::fmt::Error> for LoadError {
    fn from(e: std::fmt::Error) -> Self {
        LoadError::Write(e.to_string())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn value_to_field(v: &Value) -> String {
    match v {
        Value::Str(s) => escape(s),
        other => other.to_string(),
    }
}

fn field_to_value(ty: ValueType, field: &str, line: usize) -> Result<Value, LoadError> {
    let err = |msg: String| LoadError::Syntax { line, msg };
    Ok(match ty {
        ValueType::Bool => Value::Bool(
            field
                .parse::<bool>()
                .map_err(|_| err(format!("bad bool `{field}`")))?,
        ),
        ValueType::Int => Value::Int(
            field
                .parse::<i64>()
                .map_err(|_| err(format!("bad int `{field}`")))?,
        ),
        ValueType::Double => Value::Double(
            field
                .parse::<f64>()
                .map_err(|_| err(format!("bad double `{field}`")))?,
        ),
        ValueType::Str => Value::Str(unescape(field)),
        ValueType::DateTime => Value::DateTime(
            field
                .trim_start_matches('@')
                .parse::<i64>()
                .map_err(|_| err(format!("bad datetime `{field}`")))?,
        ),
        ValueType::Vertex | ValueType::Edge => {
            return Err(err("vertex/edge attributes are not storable".into()))
        }
    })
}

/// Serializes `g` (schema + data) into any [`std::fmt::Write`] sink.
///
/// Sink failures propagate as [`LoadError::Write`] instead of panicking,
/// so a full disk or broken pipe behind the sink is a reported error.
pub fn save_to_writer<W: std::fmt::Write>(g: &Graph, out: &mut W) -> Result<(), LoadError> {
    out.write_str("#SCHEMA\n")?;
    for (_, vt) in g.schema().vertex_types() {
        write!(out, "VTYPE {}", vt.name)?;
        for a in &vt.attrs {
            write!(out, " {}:{}", a.name, a.ty)?;
        }
        out.write_char('\n')?;
    }
    for (_, et) in g.schema().edge_types() {
        write!(
            out,
            "ETYPE {} {}",
            et.name,
            if et.directed { "DIRECTED" } else { "UNDIRECTED" }
        )?;
        for a in &et.attrs {
            write!(out, " {}:{}", a.name, a.ty)?;
        }
        out.write_char('\n')?;
    }
    out.write_str("#DATA\n")?;
    for v in g.vertices() {
        let vt = g.vertex_type_of(v);
        let def = g.schema().vertex_type(vt);
        write!(out, "V\t{}", def.name)?;
        for i in 0..def.attrs.len() {
            write!(out, "\t{}", value_to_field(g.vertex_attr(v, i)))?;
        }
        out.write_char('\n')?;
    }
    for e in g.edges() {
        let et = g.edge_type_of(e);
        let def = g.schema().edge_type(et);
        let (s, t) = g.edge_endpoints(e);
        write!(out, "E\t{}\t{}\t{}", def.name, s.0, t.0)?;
        for i in 0..def.attrs.len() {
            write!(out, "\t{}", value_to_field(g.edge_attr(e, i)))?;
        }
        out.write_char('\n')?;
    }
    Ok(())
}

/// Serializes `g` (schema + data) to the text format.
pub fn save_to_string(g: &Graph) -> Result<String, LoadError> {
    let mut out = String::new();
    save_to_writer(g, &mut out)?;
    Ok(out)
}

/// Writes `bytes` to `path` atomically: write to a sibling temp file,
/// fsync it, rename over the target, then fsync the directory so the
/// rename itself is durable. A crash at any point leaves either the old
/// file or the new one — never a truncated hybrid.
pub fn atomic_write_bytes(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Directory fsync makes the rename durable on POSIX filesystems;
        // best-effort elsewhere (opening a directory may not be allowed).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Serializes `g` to `path` atomically (fsync + rename): a crash mid-save
/// cannot leave a truncated file that a later load would misparse.
pub fn save_to_file(g: &Graph, path: &std::path::Path) -> Result<(), LoadError> {
    let text = save_to_string(g)?;
    atomic_write_bytes(path, text.as_bytes())
        .map_err(|e| LoadError::Write(format!("{}: {e}", path.display())))
}

/// Parses the text format back into a [`Graph`].
pub fn load_from_string(text: &str) -> Result<Graph, LoadError> {
    let mut schema = Schema::new();
    let mut graph: Option<Graph> = None;
    let mut vertex_ids = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim_end();
        if trimmed.is_empty() || trimmed == "#SCHEMA" {
            continue;
        }
        if trimmed == "#DATA" {
            graph = Some(Graph::new(std::mem::take(&mut schema)));
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("VTYPE ") {
            let mut parts = rest.split(' ');
            let name = parts
                .next()
                .ok_or_else(|| LoadError::Syntax { line, msg: "missing vertex type name".into() })?;
            let attrs = parse_attr_defs(parts, line)?;
            schema.add_vertex_type(name, attrs)?;
        } else if let Some(rest) = trimmed.strip_prefix("ETYPE ") {
            let mut parts = rest.split(' ');
            let name = parts
                .next()
                .ok_or_else(|| LoadError::Syntax { line, msg: "missing edge type name".into() })?;
            let dir = parts
                .next()
                .ok_or_else(|| LoadError::Syntax { line, msg: "missing directedness".into() })?;
            let directed = match dir {
                "DIRECTED" => true,
                "UNDIRECTED" => false,
                other => {
                    return Err(LoadError::Syntax {
                        line,
                        msg: format!("expected DIRECTED|UNDIRECTED, got `{other}`"),
                    })
                }
            };
            let attrs = parse_attr_defs(parts, line)?;
            schema.add_edge_type(name, directed, attrs)?;
        } else if let Some(rest) = trimmed.strip_prefix("V\t") {
            let g = graph
                .as_mut()
                .ok_or_else(|| LoadError::Syntax { line, msg: "data before #DATA".into() })?;
            let mut fields = rest.split('\t');
            let tname = fields
                .next()
                .ok_or_else(|| LoadError::Syntax { line, msg: "missing vertex type".into() })?;
            let vt = g
                .schema()
                .vertex_type_id(tname)
                .ok_or_else(|| LoadError::Schema(SchemaError::UnknownVertexType(tname.into())))?;
            let tys: Vec<ValueType> =
                g.schema().vertex_type(vt).attrs.iter().map(|a| a.ty).collect();
            let mut attrs = Vec::with_capacity(tys.len());
            for ty in tys {
                let f = fields.next().ok_or_else(|| LoadError::Syntax {
                    line,
                    msg: "too few attribute fields".into(),
                })?;
                attrs.push(field_to_value(ty, f, line)?);
            }
            vertex_ids.push(g.add_vertex(vt, attrs)?);
        } else if let Some(rest) = trimmed.strip_prefix("E\t") {
            let g = graph
                .as_mut()
                .ok_or_else(|| LoadError::Syntax { line, msg: "data before #DATA".into() })?;
            let mut fields = rest.split('\t');
            let tname = fields
                .next()
                .ok_or_else(|| LoadError::Syntax { line, msg: "missing edge type".into() })?;
            let et = g
                .schema()
                .edge_type_id(tname)
                .ok_or_else(|| LoadError::Schema(SchemaError::UnknownEdgeType(tname.into())))?;
            let parse_idx = |f: Option<&str>| -> Result<usize, LoadError> {
                f.and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| LoadError::Syntax { line, msg: "bad endpoint index".into() })
            };
            let s = parse_idx(fields.next())?;
            let t = parse_idx(fields.next())?;
            if s >= vertex_ids.len() || t >= vertex_ids.len() {
                return Err(LoadError::Syntax { line, msg: "endpoint index out of range".into() });
            }
            let tys: Vec<ValueType> =
                g.schema().edge_type(et).attrs.iter().map(|a| a.ty).collect();
            let mut attrs = Vec::with_capacity(tys.len());
            for ty in tys {
                let f = fields.next().ok_or_else(|| LoadError::Syntax {
                    line,
                    msg: "too few attribute fields".into(),
                })?;
                attrs.push(field_to_value(ty, f, line)?);
            }
            g.add_edge(et, vertex_ids[s], vertex_ids[t], attrs)?;
        } else {
            return Err(LoadError::Syntax {
                line,
                msg: format!("unrecognized line `{trimmed}`"),
            });
        }
    }
    let mut graph =
        graph.ok_or(LoadError::Syntax { line: 0, msg: "missing #DATA section".into() })?;
    graph.finalize();
    Ok(graph)
}

fn parse_attr_defs<'a>(
    parts: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<Vec<AttrDef>, LoadError> {
    let mut attrs = Vec::new();
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let (name, ty) = p.split_once(':').ok_or_else(|| LoadError::Syntax {
            line,
            msg: format!("bad attribute declaration `{p}`"),
        })?;
        let ty = ValueType::parse(ty).ok_or_else(|| LoadError::Syntax {
            line,
            msg: format!("unknown type `{ty}`"),
        })?;
        attrs.push(AttrDef::new(name, ty));
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{linkedin_graph, sales_graph};

    #[test]
    fn round_trip_sales_graph() {
        let g = sales_graph();
        let text = save_to_string(&g).unwrap();
        let g2 = load_from_string(&text).unwrap();
        assert_eq!(g.vertex_count(), g2.vertex_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(save_to_string(&g2).unwrap(), text);
    }

    #[test]
    fn round_trip_undirected() {
        let g = linkedin_graph();
        let g2 = load_from_string(&save_to_string(&g).unwrap()).unwrap();
        let et = g2.schema().edge_type_id("Connected").unwrap();
        assert!(!g2.schema().is_directed(et));
        assert_eq!(g2.edge_count(), 7);
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut s = Schema::new();
        s.add_vertex_type("T", vec![AttrDef::new("v", ValueType::Str)])
            .unwrap();
        let mut g = Graph::new(s);
        let vt = g.schema().vertex_type_id("T").unwrap();
        g.add_vertex(vt, vec![Value::Str("a\tb\\c\nd".into())]).unwrap();
        let g2 = load_from_string(&save_to_string(&g).unwrap()).unwrap();
        assert_eq!(
            g2.vertex_attr_by_name(crate::graph::VertexId(0), "v"),
            Some(&Value::Str("a\tb\\c\nd".into()))
        );
    }

    #[test]
    fn syntax_errors_report_line() {
        let bad = "#SCHEMA\nVTYPE A\n#DATA\nGARBAGE\n";
        match load_from_string(bad) {
            Err(LoadError::Syntax { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn bad_endpoint_rejected() {
        let bad = "#SCHEMA\nVTYPE A\nETYPE E DIRECTED\n#DATA\nV\tA\nE\tE\t0\t9\n";
        assert!(matches!(
            load_from_string(bad),
            Err(LoadError::Syntax { line: 6, .. })
        ));
    }

    #[test]
    fn bad_attribute_value_is_an_error_not_a_panic() {
        let bad = "#SCHEMA\nVTYPE A n:INT\n#DATA\nV\tA\tnot_a_number\n";
        match load_from_string(bad) {
            Err(LoadError::Syntax { line, msg }) => {
                assert_eq!(line, 4);
                assert!(msg.contains("bad int"), "{msg}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn too_few_fields_is_an_error() {
        let bad = "#SCHEMA\nVTYPE A x:INT y:INT\n#DATA\nV\tA\t1\n";
        match load_from_string(bad) {
            Err(LoadError::Syntax { line: 4, msg }) => {
                assert!(msg.contains("too few"), "{msg}")
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn missing_data_section_is_an_error() {
        assert!(matches!(
            load_from_string("#SCHEMA\nVTYPE A\n"),
            Err(LoadError::Syntax { .. })
        ));
    }

    #[test]
    fn data_before_data_marker_is_an_error() {
        let bad = "#SCHEMA\nVTYPE A\nV\tA\n";
        match load_from_string(bad) {
            Err(LoadError::Syntax { line: 3, msg }) => {
                assert!(msg.contains("before #DATA"), "{msg}")
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_vertex_type_in_data_is_a_schema_error() {
        let bad = "#SCHEMA\nVTYPE A\n#DATA\nV\tB\n";
        assert!(matches!(
            load_from_string(bad),
            Err(LoadError::Schema(SchemaError::UnknownVertexType(_)))
        ));
    }

    /// A sink that fails after a fixed number of bytes — models a full
    /// disk behind the writer.
    struct Choke {
        left: usize,
    }

    impl std::fmt::Write for Choke {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            if s.len() > self.left {
                return Err(std::fmt::Error);
            }
            self.left -= s.len();
            Ok(())
        }
    }

    #[test]
    fn failing_sink_reports_write_error() {
        let g = sales_graph();
        let mut sink = Choke { left: 16 };
        assert!(matches!(
            save_to_writer(&g, &mut sink),
            Err(LoadError::Write(_))
        ));
    }
}
