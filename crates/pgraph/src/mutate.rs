//! Mutation batches over an immutable snapshot.
//!
//! A [`MutationOp`] describes one primitive change; a batch of ops is the
//! unit of atomicity, durability (one WAL frame) and publication (one new
//! snapshot). Every id inside a batch refers to the **batch-start**
//! graph: `AddVertex` assigns provisional ids sequentially from the
//! starting vertex count, so an op later in the same batch can reference
//! a vertex the batch itself inserted, and no op ever observes the id
//! compaction that deletions trigger.
//!
//! Deletion is tombstone-then-compact: adds and attribute writes apply
//! immediately, delete marks accumulate, and — only if the batch deleted
//! anything — the graph is rebuilt once at the end with dead vertices,
//! dead edges, and edges touching a dead endpoint dropped and ids
//! re-densified. The rebuild is deterministic (insertion order is
//! preserved), which is what makes WAL replay reproduce byte-identical
//! query results.

use crate::graph::{EdgeId, Graph, GraphError, VertexId};
use crate::schema::{ETypeId, VTypeId};
use crate::value::Value;

/// One primitive change, with ids interpreted against the batch-start
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    AddVertex { vtype: VTypeId, attrs: Vec<Value> },
    AddEdge { etype: ETypeId, src: VertexId, dst: VertexId, attrs: Vec<Value> },
    SetVertexAttr { v: VertexId, attr: usize, value: Value },
    SetEdgeAttr { e: EdgeId, attr: usize, value: Value },
    DeleteVertex { v: VertexId },
    DeleteEdge { e: EdgeId },
}

/// What a successfully applied batch did (for `POST /mutate` responses
/// and shell feedback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    pub inserted_vertices: usize,
    pub inserted_edges: usize,
    pub updated_attrs: usize,
    pub deleted_vertices: usize,
    pub deleted_edges: usize,
}

impl BatchSummary {
    pub fn is_empty(&self) -> bool {
        *self == BatchSummary::default()
    }
}

/// Applies `ops` to `g` (a private clone of the published snapshot) as
/// one atomic batch. On error the graph must be discarded — it may hold
/// a prefix of the batch.
///
/// The returned graph is always finalized: readers of the next published
/// snapshot pay zero overlay-chasing cost.
pub fn apply_batch(g: &mut Graph, ops: &[MutationOp]) -> Result<BatchSummary, GraphError> {
    let mut summary = BatchSummary::default();
    let mut dead_vertices: Vec<bool> = Vec::new();
    let mut dead_edges: Vec<bool> = Vec::new();

    for op in ops {
        match op {
            MutationOp::AddVertex { vtype, attrs } => {
                if vtype.0 as usize >= g.schema().vertex_type_count() {
                    return Err(GraphError::Schema(
                        crate::schema::SchemaError::UnknownVertexType(format!("#{}", vtype.0)),
                    ));
                }
                g.add_vertex(*vtype, attrs.clone())?;
                summary.inserted_vertices += 1;
            }
            MutationOp::AddEdge { etype, src, dst, attrs } => {
                if etype.0 as usize >= g.schema().edge_type_count() {
                    return Err(GraphError::Schema(
                        crate::schema::SchemaError::UnknownEdgeType(format!("#{}", etype.0)),
                    ));
                }
                g.add_edge(*etype, *src, *dst, attrs.clone())?;
                summary.inserted_edges += 1;
            }
            MutationOp::SetVertexAttr { v, attr, value } => {
                let def = vertex_def(g, *v)?;
                if *attr >= def {
                    return Err(GraphError::AttrArity { expected: def, got: *attr + 1 });
                }
                g.set_vertex_attr(*v, *attr, value.clone());
                summary.updated_attrs += 1;
            }
            MutationOp::SetEdgeAttr { e, attr, value } => {
                let def = edge_def(g, *e)?;
                if *attr >= def {
                    return Err(GraphError::AttrArity { expected: def, got: *attr + 1 });
                }
                g.set_edge_attr(*e, *attr, value.clone());
                summary.updated_attrs += 1;
            }
            MutationOp::DeleteVertex { v } => {
                if v.0 as usize >= g.vertex_count() {
                    return Err(GraphError::BadVertexId(*v));
                }
                mark(&mut dead_vertices, v.0 as usize);
            }
            MutationOp::DeleteEdge { e } => {
                if e.0 as usize >= g.edge_count() {
                    return Err(GraphError::BadEdgeId(*e));
                }
                mark(&mut dead_edges, e.0 as usize);
            }
        }
    }

    if dead_vertices.iter().any(|&d| d) || dead_edges.iter().any(|&d| d) {
        let (compacted, dv, de) = compact(g, &dead_vertices, &dead_edges);
        summary.deleted_vertices = dv;
        summary.deleted_edges = de;
        *g = compacted;
    } else {
        g.finalize();
    }
    Ok(summary)
}

fn vertex_def(g: &Graph, v: VertexId) -> Result<usize, GraphError> {
    if v.0 as usize >= g.vertex_count() {
        return Err(GraphError::BadVertexId(v));
    }
    Ok(g.schema().vertex_type(g.vertex_type_of(v)).attrs.len())
}

fn edge_def(g: &Graph, e: EdgeId) -> Result<usize, GraphError> {
    if e.0 as usize >= g.edge_count() {
        return Err(GraphError::BadEdgeId(e));
    }
    Ok(g.schema().edge_type(g.edge_type_of(e)).attrs.len())
}

fn mark(flags: &mut Vec<bool>, idx: usize) {
    if flags.len() <= idx {
        flags.resize(idx + 1, false);
    }
    flags[idx] = true;
}

/// Rebuilds `g` without tombstoned vertices/edges. Edges with a dead
/// endpoint are dropped too (referential integrity). Surviving elements
/// keep their relative order, so the result is deterministic.
fn compact(g: &Graph, dead_vertices: &[bool], dead_edges: &[bool]) -> (Graph, usize, usize) {
    let vdead = |v: VertexId| dead_vertices.get(v.0 as usize).copied().unwrap_or(false);
    let edead = |e: EdgeId| dead_edges.get(e.0 as usize).copied().unwrap_or(false);

    let mut out = Graph::new(g.schema().clone());
    let mut vmap: Vec<Option<VertexId>> = Vec::with_capacity(g.vertex_count());
    let mut deleted_vertices = 0usize;
    for v in g.vertices() {
        if vdead(v) {
            vmap.push(None);
            deleted_vertices += 1;
            continue;
        }
        let nattrs = g.schema().vertex_type(g.vertex_type_of(v)).attrs.len();
        let attrs: Vec<Value> = (0..nattrs).map(|i| g.vertex_attr(v, i).clone()).collect();
        // Same schema, arity verified by construction: cannot fail.
        let nv = out
            .add_vertex(g.vertex_type_of(v), attrs)
            .expect("compact add_vertex");
        vmap.push(Some(nv));
    }
    let mut deleted_edges = 0usize;
    for e in g.edges() {
        let (s, t) = g.edge_endpoints(e);
        if edead(e) || vdead(s) || vdead(t) {
            deleted_edges += 1;
            continue;
        }
        let nattrs = g.schema().edge_type(g.edge_type_of(e)).attrs.len();
        let attrs: Vec<Value> = (0..nattrs).map(|i| g.edge_attr(e, i).clone()).collect();
        let (Some(ns), Some(nt)) = (vmap[s.0 as usize], vmap[t.0 as usize]) else {
            unreachable!("live endpoints have mappings")
        };
        out.add_edge(g.edge_type_of(e), ns, nt, attrs).expect("compact add_edge");
    }
    out.finalize();
    (out, deleted_vertices, deleted_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sales_graph;
    use crate::loader::save_to_string;

    fn vt(g: &Graph, name: &str) -> VTypeId {
        g.schema().vertex_type_id(name).unwrap()
    }

    #[test]
    fn insert_vertex_and_edge_in_one_batch() {
        let mut g = sales_graph();
        let base_v = g.vertex_count();
        let person = vt(&g, "Customer");
        let prod = vt(&g, "Product");
        let bought = g.schema().edge_type_id("Bought").unwrap();
        let nattrs_p = g.schema().vertex_type(person).attrs.len();
        let nattrs_prod = g.schema().vertex_type(prod).attrs.len();
        let nattrs_b = g.schema().edge_type(bought).attrs.len();
        let mk = |n: usize, seed: i64| -> Vec<Value> {
            (0..n)
                .map(|i| match i {
                    0 => Value::Str(format!("new{seed}")),
                    _ => Value::Int(seed),
                })
                .collect()
        };
        let ops = vec![
            MutationOp::AddVertex { vtype: person, attrs: mk(nattrs_p, 7) },
            MutationOp::AddVertex { vtype: prod, attrs: mk(nattrs_prod, 8) },
            // References the two vertices inserted above by provisional id.
            MutationOp::AddEdge {
                etype: bought,
                src: VertexId(base_v as u32),
                dst: VertexId(base_v as u32 + 1),
                attrs: (0..nattrs_b).map(|_| Value::Int(1)).collect(),
            },
        ];
        let s = apply_batch(&mut g, &ops).unwrap();
        assert_eq!(s.inserted_vertices, 2);
        assert_eq!(s.inserted_edges, 1);
        assert_eq!(g.vertex_count(), base_v + 2);
        assert!(g.is_finalized());
    }

    #[test]
    fn delete_vertex_drops_incident_edges_and_redensifies() {
        let mut g = sales_graph();
        let v0 = VertexId(0);
        let base_v = g.vertex_count();
        let base_e = g.edge_count();
        let incident = g.adjacency(v0).len();
        assert!(incident > 0, "fixture vertex 0 must have edges");
        let s = apply_batch(&mut g, &[MutationOp::DeleteVertex { v: v0 }]).unwrap();
        assert_eq!(s.deleted_vertices, 1);
        assert!(s.deleted_edges > 0);
        assert_eq!(g.vertex_count(), base_v - 1);
        assert!(g.edge_count() < base_e);
        // Dense ids: every id below the new count is addressable.
        for v in g.vertices() {
            let _ = g.vertex_type_of(v);
        }
        assert!(g.is_finalized());
    }

    #[test]
    fn compaction_is_deterministic() {
        let ops = [
            MutationOp::DeleteVertex { v: VertexId(1) },
            MutationOp::DeleteEdge { e: EdgeId(0) },
        ];
        let mut a = sales_graph();
        let mut b = sales_graph();
        apply_batch(&mut a, &ops).unwrap();
        apply_batch(&mut b, &ops).unwrap();
        assert_eq!(save_to_string(&a).unwrap(), save_to_string(&b).unwrap());
    }

    #[test]
    fn bad_ids_are_errors_not_panics() {
        let mut g = sales_graph();
        assert!(apply_batch(&mut g, &[MutationOp::DeleteVertex { v: VertexId(9999) }]).is_err());
        let mut g = sales_graph();
        assert!(apply_batch(&mut g, &[MutationOp::DeleteEdge { e: EdgeId(9999) }]).is_err());
        let mut g = sales_graph();
        assert!(apply_batch(
            &mut g,
            &[MutationOp::SetVertexAttr { v: VertexId(0), attr: 99, value: Value::Int(1) }]
        )
        .is_err());
    }

    #[test]
    fn update_attrs_apply_in_order() {
        let mut g = sales_graph();
        let ops = [
            MutationOp::SetVertexAttr { v: VertexId(0), attr: 0, value: Value::Str("x".into()) },
            MutationOp::SetVertexAttr { v: VertexId(0), attr: 0, value: Value::Str("y".into()) },
        ];
        let s = apply_batch(&mut g, &ops).unwrap();
        assert_eq!(s.updated_attrs, 2);
        assert_eq!(g.vertex_attr(VertexId(0), 0), &Value::Str("y".into()));
    }

    #[test]
    fn double_delete_is_idempotent_within_a_batch() {
        let mut g = sales_graph();
        let base_v = g.vertex_count();
        let ops = [
            MutationOp::DeleteVertex { v: VertexId(2) },
            MutationOp::DeleteVertex { v: VertexId(2) },
        ];
        let s = apply_batch(&mut g, &ops).unwrap();
        assert_eq!(s.deleted_vertices, 1);
        assert_eq!(g.vertex_count(), base_v - 1);
    }
}
