//! Dynamically-typed attribute values.
//!
//! GSQL is dynamically typed at the evaluator level: vertex/edge
//! attributes, query parameters, accumulator inputs and table cells are
//! all [`Value`]s. Unlike `f64`, `Value` implements **total** equality,
//! ordering and hashing (doubles compare via `total_cmp` and hash via
//! their bit pattern) so that values can serve as `GROUP BY` keys,
//! `SetAccum` elements and `MapAccum` keys.

use crate::graph::{EdgeId, VertexId};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a [`Value`], used by schema attribute declarations and by
/// accumulator type parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Bool,
    Int,
    Double,
    Str,
    DateTime,
    Vertex,
    Edge,
}

impl ValueType {
    /// Parses a GSQL type name (case-insensitive).
    pub fn parse(name: &str) -> Option<ValueType> {
        Some(match name.to_ascii_lowercase().as_str() {
            "bool" => ValueType::Bool,
            "int" | "uint" => ValueType::Int,
            "float" | "double" => ValueType::Double,
            "string" | "str" => ValueType::Str,
            "datetime" => ValueType::DateTime,
            "vertex" => ValueType::Vertex,
            "edge" => ValueType::Edge,
            _ => return None,
        })
    }

    /// The neutral default of this type (attribute columns are initialized
    /// with it when no value is supplied).
    pub fn default_value(self) -> Value {
        match self {
            ValueType::Bool => Value::Bool(false),
            ValueType::Int => Value::Int(0),
            ValueType::Double => Value::Double(0.0),
            ValueType::Str => Value::Str(String::new()),
            ValueType::DateTime => Value::DateTime(0),
            ValueType::Vertex | ValueType::Edge => Value::Null,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Bool => "BOOL",
            ValueType::Int => "INT",
            ValueType::Double => "DOUBLE",
            ValueType::Str => "STRING",
            ValueType::DateTime => "DATETIME",
            ValueType::Vertex => "VERTEX",
            ValueType::Edge => "EDGE",
        };
        f.write_str(s)
    }
}

/// A runtime value. `DateTime` is epoch seconds; collection variants keep
/// canonical (sorted) representations so equality is structural.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    DateTime(i64),
    Vertex(VertexId),
    Edge(EdgeId),
    /// A fixed-arity tuple (HeapAccum elements, GroupBy keys).
    Tuple(Vec<Value>),
    /// An ordered list (ListAccum / ArrayAccum results).
    List(Vec<Value>),
    /// A set, stored sorted and deduplicated.
    Set(Vec<Value>),
    /// A map, stored sorted by key.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Discriminant rank for cross-type total ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // numerics compare with each other
            Value::Str(_) => 4,
            Value::DateTime(_) => 5,
            Value::Vertex(_) => 6,
            Value::Edge(_) => 7,
            Value::Tuple(_) => 8,
            Value::List(_) => 9,
            Value::Set(_) => 10,
            Value::Map(_) => 11,
        }
    }

    /// True for `Int` and `Double`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Double(_))
    }

    /// Numeric view as `f64` (also covers `Bool` and `DateTime` for
    /// aggregation convenience).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::DateTime(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view, when exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::DateTime(t) => Some(*t),
            Value::Bool(b) => Some(*b as i64),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.2e18 => Some(*d as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Vertex view.
    pub fn as_vertex(&self) -> Option<VertexId> {
        match self {
            Value::Vertex(v) => Some(*v),
            _ => None,
        }
    }

    /// Edge view.
    pub fn as_edge(&self) -> Option<EdgeId> {
        match self {
            Value::Edge(e) => Some(*e),
            _ => None,
        }
    }

    /// The runtime type, when it corresponds to a schema [`ValueType`].
    pub fn value_type(&self) -> Option<ValueType> {
        Some(match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Double(_) => ValueType::Double,
            Value::Str(_) => ValueType::Str,
            Value::DateTime(_) => ValueType::DateTime,
            Value::Vertex(_) => ValueType::Vertex,
            Value::Edge(_) => ValueType::Edge,
            _ => return None,
        })
    }

    /// Builds a canonical set value (sorts and deduplicates).
    pub fn new_set(mut items: Vec<Value>) -> Value {
        items.sort();
        items.dedup();
        Value::Set(items)
    }

    /// Builds a canonical map value (sorts by key; later duplicates win).
    pub fn new_map(mut entries: Vec<(Value, Value)>) -> Value {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.reverse();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries.reverse();
        Value::Map(entries)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compares an `i64` with an `f64` **exactly** (no lossy `as f64` cast,
/// which collapses integers above 2^53 onto nearby doubles). The double
/// side follows `f64::total_cmp`: NaNs sort by sign outside the
/// infinities, and `Int(0)` sorts *above* `Double(-0.0)` (like `0.0`
/// does), keeping the mixed order antisymmetric and transitive.
fn cmp_int_double(a: i64, b: f64) -> Ordering {
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;
    if b.is_nan() {
        // total_cmp places -NaN below -inf and +NaN above +inf.
        return if b.is_sign_negative() { Ordering::Greater } else { Ordering::Less };
    }
    if b >= TWO_POW_63 {
        // Covers +inf; every i64 is < 2^63.
        return Ordering::Less;
    }
    if b < -TWO_POW_63 {
        // Covers -inf; -2^63 itself is representable and handled below.
        return Ordering::Greater;
    }
    // b is finite in [-2^63, 2^63), so its truncation converts exactly.
    let t = b.trunc();
    let ti = t as i64;
    match a.cmp(&ti) {
        Ordering::Equal => {
            // Equal integer parts: the fractional part decides (the
            // subtraction is exact, and x - y == 0 iff x == y in IEEE
            // arithmetic, so the sign test is reliable).
            let frac = b - t;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 || (a == 0 && b.is_sign_negative()) {
                // A negative fraction puts b below a; so does b == -0.0
                // against Int(0) (total_cmp: -0.0 < 0.0).
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        unequal => unequal,
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => cmp_int_double(*a, *b),
            (Double(a), Int(b)) => cmp_int_double(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (Vertex(a), Vertex(b)) => a.cmp(b),
            (Edge(a), Edge(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) | (List(a), List(b)) | (Set(a), Set(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Double must hash consistently with `Int(x) == Double(x as f64)`.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                state.write_u8(2);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::DateTime(t) => {
                state.write_u8(5);
                t.hash(state);
            }
            Value::Vertex(v) => {
                state.write_u8(6);
                v.hash(state);
            }
            Value::Edge(e) => {
                state.write_u8(7);
                e.hash(state);
            }
            Value::Tuple(xs) => {
                state.write_u8(8);
                xs.hash(state);
            }
            Value::List(xs) => {
                state.write_u8(9);
                xs.hash(state);
            }
            Value::Set(xs) => {
                state.write_u8(10);
                xs.hash(state);
            }
            Value::Map(xs) => {
                state.write_u8(11);
                xs.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::Int(i) => write!(f, "{i}"),
                Value::Double(d) => {
                    if d.fract() == 0.0 && d.abs() < 1e15 {
                        write!(f, "{d:.1}")
                    } else {
                        write!(f, "{d}")
                    }
                }
                Value::Str(s) => write!(f, "{s}"),
                Value::DateTime(t) => write!(f, "@{t}"),
                Value::Vertex(v) => write!(f, "V{}", v.0),
                Value::Edge(e) => write!(f, "E{}", e.0),
                Value::Tuple(xs) => {
                    f.write_str("(")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{x}")?;
                    }
                    f.write_str(")")
                }
                Value::List(xs) => {
                    f.write_str("[")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{x}")?;
                    }
                    f.write_str("]")
                }
                Value::Set(xs) => {
                    f.write_str("{")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{x}")?;
                    }
                    f.write_str("}")
                }
                Value::Map(xs) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in xs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{k} -> {v}")?;
                    }
                    f.write_str("}")
                }
            }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<VertexId> for Value {
    fn from(v: VertexId) -> Self {
        Value::Vertex(v)
    }
}

/// Cheap, conservative heap-footprint estimation — the basis of the
/// query engine's accumulator memory budget. Estimates count the inline
/// size plus owned heap allocations; they are approximations (allocator
/// overhead and capacity slack are ignored), intended for budget
/// enforcement rather than exact profiling.
pub trait MemSize {
    /// Estimated total size in bytes (inline + owned heap).
    fn estimated_bytes(&self) -> usize;
}

impl MemSize for Value {
    fn estimated_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        inline
            + match self {
                Value::Str(s) => s.capacity(),
                Value::Tuple(xs) | Value::List(xs) | Value::Set(xs) => {
                    xs.iter().map(MemSize::estimated_bytes).sum()
                }
                Value::Map(entries) => entries
                    .iter()
                    .map(|(k, v)| k.estimated_bytes() + v.estimated_bytes())
                    .sum(),
                _ => 0,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_ne!(Value::Int(3), Value::Double(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
    }

    #[test]
    fn large_magnitude_int_double_ordering_is_exact() {
        // 2^53 + 1 is the first integer a double cannot represent; the old
        // `i64 as f64` comparison collapsed it onto 2^53.
        let p53 = 1i64 << 53;
        assert_eq!(Value::Int(p53), Value::Double(p53 as f64));
        assert!(Value::Int(p53 + 1) > Value::Double(p53 as f64));
        assert!(Value::Double(p53 as f64) < Value::Int(p53 + 1));
        assert!(Value::Int(-(p53 + 1)) < Value::Double(-(p53 as f64)));
        // i64::MAX rounds up to 2^63 as a double; they must not be equal.
        assert!(Value::Int(i64::MAX) < Value::Double(i64::MAX as f64));
        assert!(Value::Int(i64::MIN) == Value::Double(i64::MIN as f64));
        assert!(Value::Int(i64::MIN + 1) > Value::Double(i64::MIN as f64));
    }

    #[test]
    fn int_double_ordering_extremes() {
        assert!(Value::Int(i64::MAX) < Value::Double(f64::INFINITY));
        assert!(Value::Int(i64::MIN) > Value::Double(f64::NEG_INFINITY));
        // total_cmp semantics: +NaN above +inf, -NaN below -inf.
        assert!(Value::Int(i64::MAX) < Value::Double(f64::NAN));
        assert!(Value::Int(i64::MIN) > Value::Double(-f64::NAN));
        // Fractional parts order correctly on both sides of zero.
        assert!(Value::Int(-1) > Value::Double(-1.5));
        assert!(Value::Int(2) < Value::Double(2.5));
        // Int(0) sits with +0.0, above -0.0 (matching Double total order).
        assert!(Value::Int(0) > Value::Double(-0.0));
        assert_eq!(Value::Int(0), Value::Double(0.0));
    }

    #[test]
    fn mixed_numeric_ordering_is_antisymmetric_and_transitive() {
        let vals = [
            Value::Double(-f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Int(i64::MIN),
            Value::Double(-0.0),
            Value::Int(0),
            Value::Double(0.5),
            Value::Int(1 << 53),
            Value::Int((1 << 53) + 1),
            Value::Int(i64::MAX),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NAN),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), b.cmp(a).reverse(), "{a:?} vs {b:?}");
                match i.cmp(&j) {
                    Ordering::Less => assert!(a < b, "{a:?} !< {b:?}"),
                    Ordering::Equal => assert_eq!(a, b),
                    Ordering::Greater => assert!(a > b, "{a:?} !> {b:?}"),
                }
            }
        }
    }

    #[test]
    fn total_order_on_doubles() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(f64::NEG_INFINITY) < Value::Double(0.0));
    }

    #[test]
    fn cross_type_ordering_is_stable() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(5) < Value::Str("a".into()));
    }

    #[test]
    fn set_canonicalization() {
        let s = Value::new_set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(s, Value::Set(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn map_canonicalization_last_wins() {
        let m = Value::new_map(vec![
            (Value::Int(1), Value::Str("a".into())),
            (Value::Int(1), Value::Str("b".into())),
            (Value::Int(0), Value::Str("z".into())),
        ]);
        assert_eq!(
            m,
            Value::Map(vec![
                (Value::Int(0), Value::Str("z".into())),
                (Value::Int(1), Value::Str("b".into())),
            ])
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(
            Value::Tuple(vec![Value::Int(1), Value::Str("x".into())]).to_string(),
            "(1, x)"
        );
    }

    #[test]
    fn type_parsing() {
        assert_eq!(ValueType::parse("FLOAT"), Some(ValueType::Double));
        assert_eq!(ValueType::parse("string"), Some(ValueType::Str));
        assert_eq!(ValueType::parse("nope"), None);
    }

    #[test]
    fn defaults_match_types() {
        assert_eq!(ValueType::Int.default_value(), Value::Int(0));
        assert_eq!(ValueType::Str.default_value(), Value::Str(String::new()));
    }
}
