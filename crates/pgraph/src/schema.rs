//! Graph schema: vertex and edge type definitions.
//!
//! TigerGraph's data model (and the upcoming GQL standard's) supports
//! graphs that **mix directed and undirected edges** — the paper's DARPEs
//! exist precisely to direction-adorn such mixed graphs. Each edge type is
//! therefore declared directed or undirected at the schema level.

use crate::fxhash::FxHashMap;
use crate::value::ValueType;
use std::fmt;

/// Identifier of a vertex type within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VTypeId(pub u32);

/// Identifier of an edge type within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ETypeId(pub u32);

/// A typed attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    pub name: String,
    pub ty: ValueType,
}

impl AttrDef {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        AttrDef { name: name.into(), ty }
    }
}

/// A vertex type: a name plus its attribute columns.
#[derive(Debug, Clone)]
pub struct VertexTypeDef {
    pub name: String,
    pub attrs: Vec<AttrDef>,
}

/// An edge type: name, directedness, endpoint type constraints (empty =
/// unconstrained) and attribute columns.
#[derive(Debug, Clone)]
pub struct EdgeTypeDef {
    pub name: String,
    pub directed: bool,
    /// Allowed source vertex types; empty means any.
    pub from_types: Vec<VTypeId>,
    /// Allowed target vertex types; empty means any.
    pub to_types: Vec<VTypeId>,
    pub attrs: Vec<AttrDef>,
}

/// Schema construction / lookup errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateVertexType(String),
    DuplicateEdgeType(String),
    UnknownVertexType(String),
    UnknownEdgeType(String),
    UnknownAttribute { owner: String, attr: String },
    DuplicateAttribute { owner: String, attr: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateVertexType(n) => write!(f, "duplicate vertex type `{n}`"),
            SchemaError::DuplicateEdgeType(n) => write!(f, "duplicate edge type `{n}`"),
            SchemaError::UnknownVertexType(n) => write!(f, "unknown vertex type `{n}`"),
            SchemaError::UnknownEdgeType(n) => write!(f, "unknown edge type `{n}`"),
            SchemaError::UnknownAttribute { owner, attr } => {
                write!(f, "type `{owner}` has no attribute `{attr}`")
            }
            SchemaError::DuplicateAttribute { owner, attr } => {
                write!(f, "type `{owner}` declares attribute `{attr}` twice")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A graph schema: the set of vertex and edge types.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    vertex_types: Vec<VertexTypeDef>,
    edge_types: Vec<EdgeTypeDef>,
    vtype_by_name: FxHashMap<String, VTypeId>,
    etype_by_name: FxHashMap<String, ETypeId>,
}

impl Schema {
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a vertex type; attribute names must be unique.
    pub fn add_vertex_type(
        &mut self,
        name: impl Into<String>,
        attrs: Vec<AttrDef>,
    ) -> Result<VTypeId, SchemaError> {
        let name = name.into();
        if self.vtype_by_name.contains_key(&name) {
            return Err(SchemaError::DuplicateVertexType(name));
        }
        check_attrs(&name, &attrs)?;
        let id = VTypeId(self.vertex_types.len() as u32);
        self.vtype_by_name.insert(name.clone(), id);
        self.vertex_types.push(VertexTypeDef { name, attrs });
        Ok(id)
    }

    /// Declares an edge type with unconstrained endpoints.
    pub fn add_edge_type(
        &mut self,
        name: impl Into<String>,
        directed: bool,
        attrs: Vec<AttrDef>,
    ) -> Result<ETypeId, SchemaError> {
        self.add_edge_type_between(name, directed, Vec::new(), Vec::new(), attrs)
    }

    /// Declares an edge type constrained to given endpoint vertex types.
    pub fn add_edge_type_between(
        &mut self,
        name: impl Into<String>,
        directed: bool,
        from_types: Vec<VTypeId>,
        to_types: Vec<VTypeId>,
        attrs: Vec<AttrDef>,
    ) -> Result<ETypeId, SchemaError> {
        let name = name.into();
        if self.etype_by_name.contains_key(&name) {
            return Err(SchemaError::DuplicateEdgeType(name));
        }
        check_attrs(&name, &attrs)?;
        let id = ETypeId(self.edge_types.len() as u32);
        self.etype_by_name.insert(name.clone(), id);
        self.edge_types.push(EdgeTypeDef {
            name,
            directed,
            from_types,
            to_types,
            attrs,
        });
        Ok(id)
    }

    pub fn vertex_type(&self, id: VTypeId) -> &VertexTypeDef {
        &self.vertex_types[id.0 as usize]
    }

    pub fn edge_type(&self, id: ETypeId) -> &EdgeTypeDef {
        &self.edge_types[id.0 as usize]
    }

    pub fn vertex_type_id(&self, name: &str) -> Option<VTypeId> {
        self.vtype_by_name.get(name).copied()
    }

    pub fn edge_type_id(&self, name: &str) -> Option<ETypeId> {
        self.etype_by_name.get(name).copied()
    }

    pub fn vertex_type_count(&self) -> usize {
        self.vertex_types.len()
    }

    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    pub fn vertex_types(&self) -> impl Iterator<Item = (VTypeId, &VertexTypeDef)> {
        self.vertex_types
            .iter()
            .enumerate()
            .map(|(i, d)| (VTypeId(i as u32), d))
    }

    pub fn edge_types(&self) -> impl Iterator<Item = (ETypeId, &EdgeTypeDef)> {
        self.edge_types
            .iter()
            .enumerate()
            .map(|(i, d)| (ETypeId(i as u32), d))
    }

    /// Index of attribute `attr` within vertex type `vt`.
    pub fn vertex_attr_index(&self, vt: VTypeId, attr: &str) -> Option<usize> {
        self.vertex_type(vt).attrs.iter().position(|a| a.name == attr)
    }

    /// Index of attribute `attr` within edge type `et`.
    pub fn edge_attr_index(&self, et: ETypeId, attr: &str) -> Option<usize> {
        self.edge_type(et).attrs.iter().position(|a| a.name == attr)
    }

    /// True iff `et` is declared directed.
    pub fn is_directed(&self, et: ETypeId) -> bool {
        self.edge_type(et).directed
    }
}

fn check_attrs(owner: &str, attrs: &[AttrDef]) -> Result<(), SchemaError> {
    for (i, a) in attrs.iter().enumerate() {
        if attrs[..i].iter().any(|b| b.name == a.name) {
            return Err(SchemaError::DuplicateAttribute {
                owner: owner.to_string(),
                attr: a.name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        let person = s
            .add_vertex_type("Person", vec![AttrDef::new("name", ValueType::Str)])
            .unwrap();
        let knows = s.add_edge_type("Knows", false, vec![]).unwrap();
        assert_eq!(s.vertex_type_id("Person"), Some(person));
        assert_eq!(s.edge_type_id("Knows"), Some(knows));
        assert_eq!(s.vertex_type(person).name, "Person");
        assert!(!s.is_directed(knows));
        assert_eq!(s.vertex_attr_index(person, "name"), Some(0));
        assert_eq!(s.vertex_attr_index(person, "nope"), None);
    }

    #[test]
    fn duplicate_types_rejected() {
        let mut s = Schema::new();
        s.add_vertex_type("A", vec![]).unwrap();
        assert_eq!(
            s.add_vertex_type("A", vec![]),
            Err(SchemaError::DuplicateVertexType("A".into()))
        );
        s.add_edge_type("E", true, vec![]).unwrap();
        assert!(matches!(
            s.add_edge_type("E", false, vec![]),
            Err(SchemaError::DuplicateEdgeType(_))
        ));
    }

    #[test]
    fn duplicate_attrs_rejected() {
        let mut s = Schema::new();
        let r = s.add_vertex_type(
            "A",
            vec![
                AttrDef::new("x", ValueType::Int),
                AttrDef::new("x", ValueType::Str),
            ],
        );
        assert!(matches!(r, Err(SchemaError::DuplicateAttribute { .. })));
    }

    #[test]
    fn iteration_order_matches_ids() {
        let mut s = Schema::new();
        let a = s.add_vertex_type("A", vec![]).unwrap();
        let b = s.add_vertex_type("B", vec![]).unwrap();
        let ids: Vec<VTypeId> = s.vertex_types().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
